//! Property tests for the ranking-synthesis pass: on randomly generated
//! affine-guard loops, the synthesized certificate must over-approximate
//! what concrete unfoldings do.
//!
//! * Bounded-prefix certificates `k₀`: for a countdown loop with
//!   transformer `x ↦ a·x − d` (`a ∈ (0, 1]`, `d > 0`) and a bounded
//!   entry value, concretely iterating the transformer from *any* entry
//!   in the static range must drive the guard below 0 within `k₀`
//!   steps. An undercount here would make the two-phase tail formula
//!   unsound (the geometric phase would start before the guard can
//!   actually fail).
//! * Geometric rates `c_eff`: for a coin-guarded loop that continues
//!   with probability `1 − p`, the verdict's rate must dominate that
//!   concrete per-step continue mass.

use gubpi_analysis::{ProgramFacts, RankVerdict, RankingEvidence};
use gubpi_lang::{infer, parse, ExprKind, NodeId};
use gubpi_types::infer_interval_types;
use proptest::prelude::*;

/// Compiles a loop and returns the ranking verdict of its single `μ`.
fn verdict_of(src: &str) -> (ProgramFacts, Option<NodeId>) {
    let program = parse(src).unwrap_or_else(|e| panic!("loop must parse: {e:?}\n{src}"));
    let simple = infer(&program).unwrap_or_else(|e| panic!("loop must type-check: {e:?}\n{src}"));
    let typing = infer_interval_types(&program, &simple);
    let facts = ProgramFacts::compute(&program, &typing);
    let mut fix = None;
    program.root.walk(&mut |e| {
        if matches!(e.kind, ExprKind::Fix(..)) && fix.is_none() {
            fix = Some(e.id);
        }
    });
    (facts, fix)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `k₀` over-approximates the concrete exit time of every entry
    /// value in the loop's static range.
    #[test]
    fn bounded_prefixes_dominate_concrete_exit_times(
        // Contraction factor of the transformer, exactly representable
        // so the source literal round-trips.
        a_i in 0usize..4,
        // Per-step decrement (quarters, strictly positive).
        d_q in 1u32..=12,
        // Integer part of the entry bound: entry = e0 + sample ≤ e0 + 1.
        e0 in 0u32..=8,
    ) {
        let a = [1.0f64, 0.75, 0.5, 0.25][a_i];
        let d = f64::from(d_q) / 4.0;
        // A slope of exactly 1 is written without the multiply: the
        // extractor keeps `+`/`-` exact via directed 2Sum rounding but
        // (documentedly) widens `·` outward, and a widened slope `1 ± ε`
        // escapes the `a ⊆ [0, 1]` side condition of the prefix search.
        let step = if a == 1.0 {
            format!("x - {d}")
        } else {
            format!("{a} * x - {d}")
        };
        let src = format!(
            "let rec f x = if x <= 0 then 0 else f ({step}) in f ({e0} + sample)"
        );
        let (facts, fix) = verdict_of(&src);
        let fix = fix.expect("loop has a fix node");
        let v = facts
            .ranking_verdict(fix)
            .unwrap_or_else(|| panic!("no verdict for\n{src}"));
        // These loops always admit a bounded prefix: `a ≤ 1`, the
        // decrement is strictly positive and the entry is bounded.
        let RankVerdict::Synthesized { ranked, evidence } = v else {
            panic!("expected a synthesized certificate, got `{}` for\n{}", v.describe(), src);
        };
        prop_assert!(
            matches!(evidence, RankingEvidence::BoundedPrefix { .. }),
            "expected a bounded prefix, got `{}` for\n{}",
            v.describe(),
            src
        );
        let k0 = ranked.prefix_bound;
        // Concretely unfold the transformer from a grid of entry values
        // covering the full static range [e0, e0 + 1] (the map is
        // monotone in x, but check the grid anyway — it is cheap and
        // also guards against slope-handling bugs).
        for i in 0..=16u32 {
            let mut x = f64::from(e0) + f64::from(i) / 16.0;
            let mut exited = false;
            for _ in 0..k0 {
                if x <= 0.0 {
                    exited = true;
                    break;
                }
                x = a * x - d;
            }
            // After k₀ applications the guard must have failed: either
            // we exited mid-prefix or the final value is ≤ 0.
            prop_assert!(
                exited || x <= 0.0,
                "entry {} still alive after k₀ = {} steps (x = {}) for\n{}",
                f64::from(e0) + f64::from(i) / 16.0,
                k0,
                x,
                src
            );
        }
    }

    /// The plain-geometric rate dominates the concrete per-step
    /// continue probability `1 − p`.
    #[test]
    fn geometric_rates_dominate_concrete_continue_mass(p_q in 1u32..=15) {
        let p = f64::from(p_q) / 16.0;
        let src = format!(
            "let rec f x = if sample <= {p} then x else f (x + 1) in f 0"
        );
        let (facts, fix) = verdict_of(&src);
        let fix = fix.expect("loop has a fix node");
        let v = facts
            .ranking_verdict(fix)
            .unwrap_or_else(|| panic!("no verdict for\n{src}"));
        let RankVerdict::Geometric { rate } = v else {
            panic!("expected the plain-geometric verdict, got `{}` for\n{}", v.describe(), src);
        };
        prop_assert!(
            *rate >= 1.0 - p,
            "rate {} undercuts concrete continue mass {} for\n{}",
            rate,
            1.0 - p,
            src
        );
    }
}
