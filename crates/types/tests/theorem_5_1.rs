//! Dynamic soundness of the weight-aware interval type system
//! (Theorem 5.1): if `⊢ P : ⟨[a,b] | [c,d]⟩` and `(P, s, 1) →* (r, ⟨⟩, w)`
//! then `r ∈ [a,b]` and `w ∈ [c,d]`.
//!
//! We check this against randomly sampled runs of a model zoo that covers
//! branching, scoring, recursion and higher-order functions.

use gubpi_lang::{infer, parse};
use gubpi_semantics::bigstep::{sample_run_with, EvalOptions};
use gubpi_types::infer_interval_types;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MODELS: &[&str] = &[
    "3 * sample + 1",
    "score(2 * sample); 7",
    "if sample <= 0.5 then score(2); 1 else 3",
    "let f x = x * 2 + 1 in f (f (sample))",
    "let s = sample in score(s); s",
    "observe 0.7 from normal(sample, 0.5); sample",
    "let rec geo x = if sample <= 0.5 then x else (score(0.5); geo (x + 1)) in geo 0",
    "let rec walk x =
       if x <= 0 then 0 else
         let step = sample in
         if sample <= 0.5 then step + walk (x + step)
         else step + walk (x - step)
     in walk (1 * sample)",
    "let twice f x = f (f x) in twice (fn y -> y + sample) 0",
    "min(sample, 0.5) * max(sample, 0.5) - abs(sample - 0.5)",
    "exp(sample) / (1 + exp(sample))",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn typed_bounds_contain_sampled_runs(model_idx in 0usize..MODELS.len(), seed in 0u64..10_000) {
        let src = MODELS[model_idx];
        let p = parse(src).unwrap();
        let simple = infer(&p).unwrap();
        let typing = infer_interval_types(&p, &simple);
        let root = typing.wty(p.root.id).unwrap();
        let value_bound = root.ty.as_interval().expect("ground program");
        let weight_bound = root.weight;

        let mut rng = StdRng::seed_from_u64(seed);
        let opts = EvalOptions { fuel: 200_000, max_depth: 250 };
        // Skip non-terminating draws (bounds only speak about
        // terminating executions — partial correctness).
        if let Ok(out) = sample_run_with(&p, &mut rng, opts) {
            let w = out.weight();
            let tol = 1e-9 * (1.0 + w.abs());
            prop_assert!(
                value_bound.outward().contains(out.value),
                "{src}: value {} escapes {value_bound:?}",
                out.value
            );
            prop_assert!(
                weight_bound.lo() - tol <= w && w <= weight_bound.hi() + tol,
                "{src}: weight {w} escapes {weight_bound:?}"
            );
        }
    }
}
