//! Interval types (§5.1).

use std::fmt;

use gubpi_interval::Interval;

/// A weightless interval type `σ ::= I | σ → A`.
#[derive(Clone, PartialEq, Debug)]
pub enum ITy {
    /// A ground type refined by an interval: `{x : R | x ∈ I}`.
    Base(Interval),
    /// A function type with a weighted result.
    Fun(Box<ITy>, Box<WTy>),
}

impl ITy {
    /// For ground types, the refining interval.
    pub fn as_interval(&self) -> Option<Interval> {
        match self {
            ITy::Base(i) => Some(*i),
            ITy::Fun(..) => None,
        }
    }

    /// The subtyping relation `⊑σ` (§5.1): covariant intervals,
    /// contravariant function arguments.
    pub fn subtype_of(&self, other: &ITy) -> bool {
        match (self, other) {
            (ITy::Base(a), ITy::Base(b)) => a.subset_of(b),
            (ITy::Fun(a1, r1), ITy::Fun(a2, r2)) => a2.subtype_of(a1) && r1.subtype_of(r2),
            _ => false,
        }
    }
}

/// A weighted interval type `A = ⟨σ, I⟩`: any terminating execution
/// produces a value in `σ` with weight in `I`.
#[derive(Clone, PartialEq, Debug)]
pub struct WTy {
    /// Bound on the returned value.
    pub ty: ITy,
    /// Bound on the execution weight.
    pub weight: Interval,
}

impl WTy {
    /// Creates `⟨ty, weight⟩`.
    pub fn new(ty: ITy, weight: Interval) -> WTy {
        WTy { ty, weight }
    }

    /// The subtyping relation `⊑A`: component-wise.
    pub fn subtype_of(&self, other: &WTy) -> bool {
        self.ty.subtype_of(&other.ty) && self.weight.subset_of(&other.weight)
    }
}

impl fmt::Display for ITy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ITy::Base(i) => write!(f, "{i}"),
            ITy::Fun(a, r) => write!(f, "({a} -> {r})"),
        }
    }
}

impl fmt::Display for WTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{} | {}>", self.ty, self.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(lo: f64, hi: f64) -> ITy {
        ITy::Base(Interval::new(lo, hi))
    }

    #[test]
    fn base_subtyping_is_inclusion() {
        assert!(base(0.0, 1.0).subtype_of(&base(-1.0, 2.0)));
        assert!(!base(-1.0, 2.0).subtype_of(&base(0.0, 1.0)));
    }

    #[test]
    fn function_subtyping_is_contravariant() {
        // (bigger-arg → smaller-result) ⊑ (smaller-arg → bigger-result)
        let f1 = ITy::Fun(
            Box::new(base(-10.0, 10.0)),
            Box::new(WTy::new(base(0.0, 1.0), Interval::ONE)),
        );
        let f2 = ITy::Fun(
            Box::new(base(0.0, 1.0)),
            Box::new(WTy::new(base(-1.0, 2.0), Interval::new(0.0, 2.0))),
        );
        assert!(f1.subtype_of(&f2));
        assert!(!f2.subtype_of(&f1));
    }

    #[test]
    fn weighted_subtyping_requires_weight_inclusion() {
        let a = WTy::new(base(0.0, 1.0), Interval::ONE);
        let b = WTy::new(base(0.0, 1.0), Interval::new(0.0, 2.0));
        assert!(a.subtype_of(&b));
        assert!(!b.subtype_of(&a));
    }

    #[test]
    fn example_5_1_type_shape() {
        // ⟨[0,20] | [0,1]⟩ from Example 5.1.
        let t = WTy::new(base(0.0, 20.0), Interval::new(0.0, 1.0));
        assert_eq!(t.to_string(), "<[0, 20] | [0, 1]>");
    }
}
