//! Interval constraints over placeholder variables (Appendix D.3).
//!
//! Constraint generation replaces every interval in a typing skeleton
//! with a variable `ν`, and records simple constraints in the abstract
//! interval domain. In least-fixpoint style every constraint is read as a
//! *lower bound* on its target variable (the final assignment is the
//! least one ⊒ all contributions).

use gubpi_interval::Interval;
use gubpi_lang::PrimOp;

/// An interval placeholder variable.
pub type IVar = u32;

/// A constraint on interval variables.
#[derive(Clone, Debug, PartialEq)]
pub enum Constraint {
    /// `ν ⊒ [a, b]` — from literal rules (`ν ≡ [a,b]` in Fig. 10).
    Const(IVar, Interval),
    /// `ν₂ ⊒ ν₁` — subtyping flow (`ν₁ ⊑ ν₂`).
    Flow(IVar, IVar),
    /// `ν ⊒ f^I(ν₁, …, ν_n)` — primitive application.
    Prim(IVar, PrimOp, Vec<IVar>),
    /// `ν ⊒ ν₁ ×I ⋯ ×I ν_n` — weight products.
    Product(IVar, Vec<IVar>),
    /// `ν ⊒ ν' ⊓ [0, ∞]` — the `score` truncation.
    MeetNonNeg(IVar, IVar),
}

impl Constraint {
    /// The variable this constraint bounds.
    pub fn target(&self) -> IVar {
        match self {
            Constraint::Const(v, _)
            | Constraint::Flow(v, _)
            | Constraint::Prim(v, _, _)
            | Constraint::Product(v, _)
            | Constraint::MeetNonNeg(v, _) => *v,
        }
    }

    /// The variables this constraint reads.
    pub fn inputs(&self) -> Vec<IVar> {
        match self {
            Constraint::Const(_, _) => Vec::new(),
            Constraint::Flow(_, v) | Constraint::MeetNonNeg(_, v) => vec![*v],
            Constraint::Prim(_, _, args) => args.clone(),
            Constraint::Product(_, args) => args.clone(),
        }
    }
}

/// A growing set of constraints plus the variable supply.
#[derive(Clone, Debug, Default)]
pub struct ConstraintSet {
    next_var: IVar,
    constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// An empty set.
    pub fn new() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// Allocates a fresh variable.
    pub fn fresh(&mut self) -> IVar {
        let v = self.next_var;
        self.next_var += 1;
        v
    }

    /// Allocates a fresh variable constrained to a constant.
    pub fn fresh_const(&mut self, c: Interval) -> IVar {
        let v = self.fresh();
        self.push(Constraint::Const(v, c));
        v
    }

    /// Adds a constraint.
    pub fn push(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// Number of variables allocated.
    pub fn var_count(&self) -> usize {
        self.next_var as usize
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_variables_are_sequential() {
        let mut cs = ConstraintSet::new();
        assert_eq!(cs.fresh(), 0);
        assert_eq!(cs.fresh(), 1);
        assert_eq!(cs.var_count(), 2);
    }

    #[test]
    fn targets_and_inputs() {
        let c = Constraint::Prim(5, PrimOp::Add, vec![1, 2]);
        assert_eq!(c.target(), 5);
        assert_eq!(c.inputs(), vec![1, 2]);
        let f = Constraint::Flow(3, 4);
        assert_eq!(f.target(), 3);
        assert_eq!(f.inputs(), vec![4]);
        let k = Constraint::Const(0, Interval::ONE);
        assert!(k.inputs().is_empty());
    }
}
