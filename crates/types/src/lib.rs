//! The weight-aware interval type system of the GuBPI paper (§5, App. D).
//!
//! Types bound **both** the value of an expression (refinement-style) and
//! the weight of any terminating execution:
//!
//! ```text
//! σ ::= I | σ → A        (weightless)
//! A ::= ⟨σ, I⟩           (weighted: value bound σ, weight bound I)
//! ```
//!
//! Inference is constraint-based (Fig. 10): the program determines a
//! symbolic derivation skeleton whose intervals are placeholder variables;
//! validity becomes a system of simple interval constraints, solved by a
//! worklist algorithm over the interval lattice. Termination on infinite
//! ascending chains is ensured by the widening operator `∇`
//! ([`gubpi_interval::widen`]); a bounded number of exact rounds runs
//! first so that finite chains (the common case) lose no precision.
//!
//! The analyzer uses the result for `approxFix` (§6.2): a fixpoint that
//! exceeds the unfolding budget is replaced by
//! `λ_. score([e, f]); [c, d]`, reading `[c, d]` and `[e, f]` off the
//! fixpoint's inferred type.
//!
//! # Example (Example 5.2 of the paper)
//!
//! ```
//! use gubpi_lang::{infer, parse};
//! use gubpi_types::infer_interval_types;
//!
//! // The pedestrian's walk: no score inside, so the weight bound is [1,1].
//! let p = parse(
//!     "let rec walk x = \
//!        if x <= 0 then 0 else \
//!          let step = sample in \
//!          if sample <= 0.5 then step + walk (x + step) \
//!          else step + walk (x - step) \
//!      in walk (3 * sample)",
//! ).unwrap();
//! let simple = infer(&p).unwrap();
//! let typing = infer_interval_types(&p, &simple);
//! let (value, weight) = typing.fix_summary(&p).expect("one fixpoint");
//! assert_eq!(weight, gubpi_interval::Interval::ONE);
//! assert!(value.lo() >= 0.0); // walk returns distances ≥ 0
//! ```

mod constraints;
mod infer;
mod solve;
mod ty;

pub use constraints::{Constraint, ConstraintSet};
pub use infer::{infer_interval_types, IntervalTyping};
pub use solve::{solve, SolveOptions};
pub use ty::{ITy, WTy};
