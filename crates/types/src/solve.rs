//! Worklist constraint solver with widening (Appendix D.3).
//!
//! Computes the least assignment `A : ν → Lattice` satisfying all
//! constraints read as lower bounds, by chaotic iteration: when a
//! variable's value grows, all constraints reading it are re-evaluated.
//! The interval domain has infinite ascending chains (e.g. `ν ≡ ν + 1`),
//! so after [`SolveOptions::exact_rounds`] updates per variable the solver
//! switches to the widening operator `∇`, which pushes escaping endpoints
//! to `±∞` and guarantees termination.

use std::collections::VecDeque;

use gubpi_interval::{widen, Interval, Lattice};

use crate::constraints::{Constraint, ConstraintSet};

/// Solver knobs.
#[derive(Copy, Clone, Debug)]
pub struct SolveOptions {
    /// Number of exact (non-widening) updates allowed per variable before
    /// widening kicks in. Finite chains shorter than this lose nothing.
    pub exact_rounds: u32,
}

impl Default for SolveOptions {
    fn default() -> SolveOptions {
        SolveOptions { exact_rounds: 24 }
    }
}

/// Solves the constraint set, returning one lattice element per variable.
///
/// Variables never bounded from below stay `⊥`; callers map `⊥` to a
/// context-appropriate default (e.g. `[−∞, ∞]` for value bounds).
pub fn solve(cs: &ConstraintSet, opts: SolveOptions) -> Vec<Lattice> {
    let n = cs.var_count();
    let mut assignment = vec![Lattice::Bottom; n];
    let mut update_count = vec![0u32; n];

    // Index: for each variable, the constraints that read it.
    let mut readers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ci, c) in cs.constraints().iter().enumerate() {
        for v in c.inputs() {
            readers[v as usize].push(ci);
        }
    }

    let mut queue: VecDeque<usize> = (0..cs.constraints().len()).collect();
    let mut queued = vec![true; cs.constraints().len()];

    while let Some(ci) = queue.pop_front() {
        queued[ci] = false;
        let c = &cs.constraints()[ci];
        let contribution = eval_constraint(c, &assignment);
        let target = c.target() as usize;
        let old = assignment[target];
        let joined = old.join(contribution);
        if joined.leq(old) {
            continue; // no growth
        }
        update_count[target] += 1;
        let new = if update_count[target] > opts.exact_rounds {
            widen(old, joined)
        } else {
            joined
        };
        assignment[target] = new;
        for &ri in &readers[target] {
            if !queued[ri] {
                queued[ri] = true;
                queue.push_back(ri);
            }
        }
        // The target's own constraint may need re-evaluation when it is
        // self-referential (e.g. ν ⊒ ν + 1); it is in readers[target] if so.
    }
    assignment
}

fn eval_constraint(c: &Constraint, a: &[Lattice]) -> Lattice {
    match c {
        Constraint::Const(_, k) => Lattice::Elem(*k),
        Constraint::Flow(_, v) => a[*v as usize],
        Constraint::MeetNonNeg(_, v) => a[*v as usize].meet(Lattice::Elem(Interval::NON_NEG)),
        Constraint::Prim(_, op, args) => {
            let mut xs = Vec::with_capacity(args.len());
            for &v in args {
                match a[v as usize] {
                    Lattice::Bottom => return Lattice::Bottom, // not yet known
                    Lattice::Elem(i) => xs.push(i),
                }
            }
            Lattice::Elem(op.eval_interval(&xs))
        }
        Constraint::Product(_, args) => {
            let mut acc = Interval::ONE;
            for &v in args {
                match a[v as usize] {
                    Lattice::Bottom => return Lattice::Bottom,
                    Lattice::Elem(i) => acc = acc * i,
                }
            }
            Lattice::Elem(acc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gubpi_lang::PrimOp;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn constants_and_flows_propagate() {
        let mut cs = ConstraintSet::new();
        let a = cs.fresh_const(iv(0.0, 1.0));
        let b = cs.fresh();
        cs.push(Constraint::Flow(b, a));
        let sol = solve(&cs, SolveOptions::default());
        assert_eq!(sol[a as usize].interval(), Some(iv(0.0, 1.0)));
        assert_eq!(sol[b as usize].interval(), Some(iv(0.0, 1.0)));
    }

    #[test]
    fn joins_from_multiple_sources() {
        let mut cs = ConstraintSet::new();
        let a = cs.fresh_const(iv(0.0, 1.0));
        let b = cs.fresh_const(iv(2.0, 3.0));
        let c = cs.fresh();
        cs.push(Constraint::Flow(c, a));
        cs.push(Constraint::Flow(c, b));
        let sol = solve(&cs, SolveOptions::default());
        assert_eq!(sol[c as usize].interval(), Some(iv(0.0, 3.0)));
    }

    #[test]
    fn primitive_constraints_apply_interval_lifting() {
        let mut cs = ConstraintSet::new();
        let a = cs.fresh_const(iv(1.0, 2.0));
        let b = cs.fresh_const(iv(10.0, 20.0));
        let s = cs.fresh();
        cs.push(Constraint::Prim(s, PrimOp::Add, vec![a, b]));
        let sol = solve(&cs, SolveOptions::default());
        assert_eq!(sol[s as usize].interval(), Some(iv(11.0, 22.0)));
    }

    #[test]
    fn appendix_d_example_requires_widening() {
        // ν₁ ≡ [0,0], ν₂ ≡ [1,1], ν₁ ⊑ ν₃, ν₃ ≡ ν₃ + ν₂ — the minimal
        // solution after widening is ν₃ = [0, ∞].
        let mut cs = ConstraintSet::new();
        let v1 = cs.fresh_const(iv(0.0, 0.0));
        let v2 = cs.fresh_const(iv(1.0, 1.0));
        let v3 = cs.fresh();
        cs.push(Constraint::Flow(v3, v1));
        cs.push(Constraint::Prim(v3, PrimOp::Add, vec![v3, v2]));
        let sol = solve(&cs, SolveOptions::default());
        let got = sol[v3 as usize].interval().unwrap();
        assert_eq!(got.lo(), 0.0);
        assert_eq!(got.hi(), f64::INFINITY);
    }

    #[test]
    fn finite_chains_stay_exact() {
        // A 10-step chain of flows must not trigger widening.
        let mut cs = ConstraintSet::new();
        let first = cs.fresh_const(iv(3.0, 4.0));
        let mut prev = first;
        for _ in 0..10 {
            let next = cs.fresh();
            cs.push(Constraint::Flow(next, prev));
            prev = next;
        }
        let sol = solve(&cs, SolveOptions::default());
        assert_eq!(sol[prev as usize].interval(), Some(iv(3.0, 4.0)));
    }

    #[test]
    fn products_treat_missing_inputs_as_bottom() {
        let mut cs = ConstraintSet::new();
        let w1 = cs.fresh_const(Interval::ONE);
        let unknown = cs.fresh(); // never bounded
        let p = cs.fresh();
        cs.push(Constraint::Product(p, vec![w1, unknown]));
        let sol = solve(&cs, SolveOptions::default());
        assert!(sol[p as usize].is_bottom());
    }

    #[test]
    fn meet_non_neg_truncates() {
        let mut cs = ConstraintSet::new();
        let m = cs.fresh_const(iv(-2.0, 3.0));
        let r = cs.fresh();
        cs.push(Constraint::MeetNonNeg(r, m));
        let sol = solve(&cs, SolveOptions::default());
        assert_eq!(sol[r as usize].interval(), Some(iv(0.0, 3.0)));
    }
}
