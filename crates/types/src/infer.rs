//! Constraint generation (Fig. 10) and type resolution.
//!
//! Walks the program once, allocating interval variables for every
//! interval position in the typing skeleton (the skeleton's shape is
//! fixed by the term and its simple types), emitting constraints, solving
//! them, and resolving a concrete [`WTy`] for every node.

use std::collections::HashMap;

use gubpi_interval::{Interval, Lattice};
use gubpi_lang::{Expr, ExprKind, Name, NodeId, Program, SimpleTy, TypeMap};

use crate::constraints::{Constraint, ConstraintSet, IVar};
use crate::solve::{solve, SolveOptions};
use crate::ty::{ITy, WTy};

/// A symbolic weightless type: the typing skeleton with variables.
#[derive(Clone, Debug)]
enum SymTy {
    Base(IVar),
    Fun(Box<SymTy>, Box<SymWTy>),
}

/// A symbolic weighted type.
#[derive(Clone, Debug)]
struct SymWTy {
    ty: SymTy,
    weight: IVar,
}

/// The result of weight-aware interval type inference: a [`WTy`] for
/// every AST node.
#[derive(Clone, Debug)]
pub struct IntervalTyping {
    map: HashMap<NodeId, WTy>,
}

impl IntervalTyping {
    /// The weighted type of a node, if inference reached it.
    pub fn wty(&self, id: NodeId) -> Option<&WTy> {
        self.map.get(&id)
    }

    /// For a `Fix` node of first-order type, the bounds used by
    /// `approxFix` (§6.2): `(value bound [c,d], weight bound [e,f])` such
    /// that the fixpoint may be replaced by `λ_. score([e,f]); [c,d]`.
    pub fn fix_apply_bounds(&self, id: NodeId) -> Option<(Interval, Interval)> {
        match self.wty(id)? {
            WTy {
                ty: ITy::Fun(_, result),
                ..
            } => {
                let value = result.ty.as_interval()?;
                Some((value, result.weight))
            }
            _ => None,
        }
    }

    /// The higher-order `approxFix` chain for a `Fix` node (§6.2 "extends
    /// to higher-order fixpoints as expected"): for a curried fixpoint of
    /// type `σ₁ → ⟨σ₂ → ⟨… → ⟨[c,d], w_k⟩ …⟩, w₁⟩`, returns
    /// `(extra, [c,d], w₁ ×I ⋯ ×I w_k)` where `extra` is the number of
    /// applications *after the first* needed to reach the ground result.
    pub fn fix_apply_chain(&self, id: NodeId) -> Option<(u32, Interval, Interval)> {
        let WTy {
            ty: ITy::Fun(_, result),
            ..
        } = self.wty(id)?
        else {
            return None;
        };
        let mut weight = result.weight;
        let mut ty = &result.ty;
        let mut extra = 0u32;
        loop {
            match ty {
                ITy::Base(i) => return Some((extra, *i, weight)),
                ITy::Fun(_, r) => {
                    extra += 1;
                    weight = weight * r.weight;
                    ty = &r.ty;
                }
            }
        }
    }

    /// Convenience for tests: the `approxFix` bounds of the unique `Fix`
    /// node of the program (`None` if there are zero or several).
    pub fn fix_summary(&self, program: &Program) -> Option<(Interval, Interval)> {
        let mut fixes = Vec::new();
        program.root.walk(&mut |e| {
            if matches!(e.kind, ExprKind::Fix(..)) {
                fixes.push(e.id);
            }
        });
        match fixes.as_slice() {
            [only] => self.fix_apply_bounds(*only),
            _ => None,
        }
    }

    /// Number of typed nodes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Runs weight-aware interval type inference (never fails; weak
/// completeness, Proposition 5.2).
pub fn infer_interval_types(program: &Program, simple: &TypeMap) -> IntervalTyping {
    infer_with_options(program, simple, SolveOptions::default())
}

/// [`infer_interval_types`] with explicit solver options.
pub fn infer_with_options(
    program: &Program,
    simple: &TypeMap,
    opts: SolveOptions,
) -> IntervalTyping {
    let mut gen = Generator {
        cs: ConstraintSet::new(),
        simple,
        node_types: HashMap::new(),
    };
    let env = Vec::new();
    let _root = gen.walk(&program.root, &env);
    let assignment = solve(&gen.cs, opts);
    let map = gen
        .node_types
        .iter()
        .map(|(id, sw)| (*id, resolve_wty(sw, &assignment)))
        .collect();
    IntervalTyping { map }
}

struct Generator<'a> {
    cs: ConstraintSet,
    simple: &'a TypeMap,
    node_types: HashMap<NodeId, SymWTy>,
}

impl Generator<'_> {
    /// `fresh(α)` of Appendix D: a skeleton with fresh variables.
    fn fresh_symty(&mut self, ty: &SimpleTy) -> SymTy {
        match ty {
            SimpleTy::Real => SymTy::Base(self.cs.fresh()),
            SimpleTy::Fun(a, b) => {
                let arg = self.fresh_symty(a);
                let res = self.fresh_symty(b);
                let w = self.cs.fresh();
                SymTy::Fun(Box::new(arg), Box::new(SymWTy { ty: res, weight: w }))
            }
        }
    }

    /// Emits flow constraints for `sub ⊑ sup` (contravariant arguments).
    fn sub_ty(&mut self, sub: &SymTy, sup: &SymTy) {
        match (sub, sup) {
            (SymTy::Base(a), SymTy::Base(b)) => self.cs.push(Constraint::Flow(*b, *a)),
            (SymTy::Fun(a1, r1), SymTy::Fun(a2, r2)) => {
                self.sub_ty(a2, a1);
                self.sub_wty(r1, r2);
            }
            _ => unreachable!("simple typing guarantees matching shapes"),
        }
    }

    fn sub_wty(&mut self, sub: &SymWTy, sup: &SymWTy) {
        self.sub_ty(&sub.ty, &sup.ty);
        self.cs.push(Constraint::Flow(sup.weight, sub.weight));
    }

    fn one(&mut self) -> IVar {
        self.cs.fresh_const(Interval::ONE)
    }

    fn walk(&mut self, e: &Expr, env: &[(Name, SymTy)]) -> SymWTy {
        let result = match &e.kind {
            ExprKind::Var(x) => {
                let ty = env
                    .iter()
                    .rev()
                    .find(|(n, _)| n == x)
                    .map(|(_, t)| t.clone())
                    .expect("type inference ran after scope checking");
                let w = self.one();
                SymWTy { ty, weight: w }
            }
            ExprKind::Const(r) => {
                let v = self.cs.fresh_const(Interval::point(*r));
                let w = self.one();
                SymWTy {
                    ty: SymTy::Base(v),
                    weight: w,
                }
            }
            ExprKind::Sample => {
                let v = self.cs.fresh_const(Interval::UNIT);
                let w = self.one();
                SymWTy {
                    ty: SymTy::Base(v),
                    weight: w,
                }
            }
            ExprKind::Lam(x, body) => {
                let param_ty = match self.simple.ty(e.id) {
                    SimpleTy::Fun(a, _) => self.fresh_symty(a),
                    SimpleTy::Real => unreachable!("lambda has function type"),
                };
                let mut env2 = env.to_vec();
                env2.push((x.clone(), param_ty.clone()));
                let body_wty = self.walk(body, &env2);
                let w = self.one();
                SymWTy {
                    ty: SymTy::Fun(Box::new(param_ty), Box::new(body_wty)),
                    weight: w,
                }
            }
            ExprKind::Fix(f, x, body) => {
                let (param_simple, result_simple) = match self.simple.ty(e.id) {
                    SimpleTy::Fun(a, b) => (a.clone(), b.clone()),
                    SimpleTy::Real => unreachable!("fixpoint has function type"),
                };
                let param_ty = self.fresh_symty(&param_simple);
                let declared_result = SymWTy {
                    ty: self.fresh_symty(&result_simple),
                    weight: self.cs.fresh(),
                };
                let fun_ty = SymTy::Fun(
                    Box::new(param_ty.clone()),
                    Box::new(declared_result.clone()),
                );
                let mut env2 = env.to_vec();
                env2.push((f.clone(), fun_ty.clone()));
                env2.push((x.clone(), param_ty));
                let body_wty = self.walk(body, &env2);
                // Body result must refine the declared invariant.
                self.sub_wty(&body_wty, &declared_result);
                let w = self.one();
                SymWTy {
                    ty: fun_ty,
                    weight: w,
                }
            }
            ExprKind::App(m, n) => {
                let m_wty = self.walk(m, env);
                let n_wty = self.walk(n, env);
                let (param, result) = match m_wty.ty {
                    SymTy::Fun(p, r) => (*p, *r),
                    SymTy::Base(_) => unreachable!("simple typing guarantees a function"),
                };
                self.sub_ty(&n_wty.ty, &param);
                let w = self.cs.fresh();
                self.cs.push(Constraint::Product(
                    w,
                    vec![m_wty.weight, n_wty.weight, result.weight],
                ));
                SymWTy {
                    ty: result.ty,
                    weight: w,
                }
            }
            ExprKind::If(c, t, els) => {
                let c_wty = self.walk(c, env);
                let t_wty = self.walk(t, env);
                let e_wty = self.walk(els, env);
                let joined = self.fresh_symty(self.simple.ty(e.id));
                self.sub_ty(&t_wty.ty, &joined);
                self.sub_ty(&e_wty.ty, &joined);
                let branch_w = self.cs.fresh();
                self.cs.push(Constraint::Flow(branch_w, t_wty.weight));
                self.cs.push(Constraint::Flow(branch_w, e_wty.weight));
                let w = self.cs.fresh();
                self.cs
                    .push(Constraint::Product(w, vec![c_wty.weight, branch_w]));
                SymWTy {
                    ty: joined,
                    weight: w,
                }
            }
            ExprKind::Prim(op, args) => {
                let mut arg_vals = Vec::with_capacity(args.len());
                let mut arg_ws = Vec::with_capacity(args.len());
                for a in args {
                    let aw = self.walk(a, env);
                    match aw.ty {
                        SymTy::Base(v) => arg_vals.push(v),
                        SymTy::Fun(..) => unreachable!("primitive arguments are ground"),
                    }
                    arg_ws.push(aw.weight);
                }
                let v = self.cs.fresh();
                self.cs.push(Constraint::Prim(v, *op, arg_vals));
                let w = self.cs.fresh();
                self.cs.push(Constraint::Product(w, arg_ws));
                SymWTy {
                    ty: SymTy::Base(v),
                    weight: w,
                }
            }
            ExprKind::Score(m) => {
                let m_wty = self.walk(m, env);
                let mv = match m_wty.ty {
                    SymTy::Base(v) => v,
                    SymTy::Fun(..) => unreachable!("score argument is ground"),
                };
                let truncated = self.cs.fresh();
                self.cs.push(Constraint::MeetNonNeg(truncated, mv));
                let w = self.cs.fresh();
                self.cs
                    .push(Constraint::Product(w, vec![m_wty.weight, truncated]));
                SymWTy {
                    ty: SymTy::Base(truncated),
                    weight: w,
                }
            }
        };
        self.node_types.insert(e.id, result.clone());
        result
    }
}

/// Resolves a symbolic type against the solved assignment. Unreached
/// variables (`⊥`) default to the safe tops: `[−∞, ∞]` for values and
/// `[0, ∞]` for weights.
fn resolve_ty(t: &SymTy, a: &[Lattice]) -> ITy {
    match t {
        SymTy::Base(v) => ITy::Base(a[*v as usize].interval_or(Interval::REAL)),
        SymTy::Fun(arg, res) => {
            ITy::Fun(Box::new(resolve_ty(arg, a)), Box::new(resolve_wty(res, a)))
        }
    }
}

fn resolve_wty(t: &SymWTy, a: &[Lattice]) -> WTy {
    WTy {
        ty: resolve_ty(&t.ty, a),
        weight: a[t.weight as usize].interval_or(Interval::NON_NEG),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gubpi_lang::{infer, parse};

    fn typing(src: &str) -> (Program, IntervalTyping) {
        let p = parse(src).unwrap();
        let simple = infer(&p).unwrap();
        let t = infer_interval_types(&p, &simple);
        (p, t)
    }

    fn root_wty(src: &str) -> WTy {
        let (p, t) = typing(src);
        t.wty(p.root.id).unwrap().clone()
    }

    #[test]
    fn constants_get_point_types() {
        let w = root_wty("3");
        assert_eq!(w.ty.as_interval(), Some(Interval::point(3.0)));
        assert_eq!(w.weight, Interval::ONE);
    }

    #[test]
    fn arithmetic_propagates_intervals() {
        let w = root_wty("3 * sample + 1");
        assert_eq!(w.ty.as_interval(), Some(Interval::new(1.0, 4.0)));
        assert_eq!(w.weight, Interval::ONE);
    }

    #[test]
    fn score_bounds_weight_by_value() {
        let w = root_wty("score(2 * sample); 7");
        assert_eq!(w.ty.as_interval(), Some(Interval::point(7.0)));
        assert_eq!(w.weight, Interval::new(0.0, 2.0));
    }

    #[test]
    fn branches_join_values_and_weights() {
        let w = root_wty("if sample <= 0.5 then score(2); 1 else 3");
        let v = w.ty.as_interval().unwrap();
        assert!(v.contains(1.0) && v.contains(3.0));
        assert!(w.weight.contains(1.0) && w.weight.contains(2.0));
    }

    #[test]
    fn every_node_receives_a_type() {
        let (p, t) = typing("let f x = score(x); x * 2 in f (sample) + f 0.25");
        let mut missing = 0;
        p.root.walk(&mut |e| {
            if t.wty(e.id).is_none() {
                missing += 1;
            }
        });
        assert_eq!(missing, 0);
        assert!(!t.is_empty() && !t.is_empty());
    }

    #[test]
    fn call_sites_flow_into_parameters() {
        // f is applied to sample∈[0,1] and 0.25; its result must cover
        // both 2·[0,1] and 2·0.25 — i.e. exactly [0,2].
        let (p, t) = typing("let f x = x * 2 in f (sample) + f 0.25");
        let root = t.wty(p.root.id).unwrap();
        assert_eq!(root.ty.as_interval(), Some(Interval::new(0.0, 4.0)));
    }

    #[test]
    fn example_5_2_pedestrian_fixpoint() {
        // μφ x. if(x, 0, (λstep. step + φ((x+step) ⊕ (x−step))) sample)
        // must get type [a,b] → ⟨[0,∞] | [1,1]⟩.
        let (p, t) = typing(
            "let rec walk x =
               if x <= 0 then 0 else
                 let step = sample in
                 if sample <= 0.5 then step + walk (x + step)
                 else step + walk (x - step)
             in walk (3 * sample)",
        );
        let (value, weight) = t.fix_summary(&p).expect("single fixpoint");
        assert_eq!(weight, Interval::ONE, "no score inside the walk");
        assert_eq!(value.lo(), 0.0);
        assert_eq!(value.hi(), f64::INFINITY);
    }

    #[test]
    fn fixpoint_with_score_gets_weight_interval() {
        let (p, t) = typing(
            "let rec geo x =
               if sample <= 0.5 then x else (score(0.5); geo (x + 1))
             in geo 0",
        );
        let (_value, weight) = t.fix_summary(&p).expect("single fixpoint");
        // Each unfolding multiplies by 0.5 ⇒ weight ⊆ [0, 1].
        assert!(weight.subset_of(&Interval::UNIT));
    }

    #[test]
    fn non_recursive_function_types_are_precise() {
        let (p, t) = typing("let f x = x + 1 in f (sample)");
        // Find the lambda for f and check its result interval is [1, 2].
        let mut found = false;
        p.root.walk(&mut |e| {
            if let ExprKind::Lam(name, _) = &e.kind {
                if &**name == "x" {
                    if let Some(WTy {
                        ty: ITy::Fun(_, res),
                        ..
                    }) = t.wty(e.id)
                    {
                        assert_eq!(res.ty.as_interval(), Some(Interval::new(1.0, 2.0)));
                        found = true;
                    }
                }
            }
        });
        assert!(found);
    }

    #[test]
    fn example_6_2_approx_fix_replacement_bounds() {
        // The pedestrian fixpoint is replaced by λ_.score([1,1]); [0,∞].
        let (p, t) = typing(
            "let rec walk x =
               if x <= 0 then 0 else
                 let step = sample in
                 if sample <= 0.5 then step + walk (x + step)
                 else step + walk (x - step)
             in walk (3 * sample)",
        );
        let mut fix_id = None;
        p.root.walk(&mut |e| {
            if matches!(e.kind, ExprKind::Fix(..)) {
                fix_id = Some(e.id);
            }
        });
        let (v, w) = t.fix_apply_bounds(fix_id.unwrap()).unwrap();
        assert_eq!(w, Interval::ONE);
        assert_eq!(v, Interval::NON_NEG);
    }
}
