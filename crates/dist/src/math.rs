//! Special functions backing the distribution layer.
//!
//! Everything here is classical numerics (Lanczos log-gamma, the
//! incomplete-gamma series/continued-fraction pair, the regularized
//! incomplete beta, and Acklam's inverse normal CDF with a Halley
//! polish), implemented from the standard formulas with `f64` accuracy
//! targets of ~1e-14 relative error on the tested ranges.

use std::f64::consts::PI;

/// Machine-precision iteration caps/guards shared by the continued
/// fractions below.
const MAX_ITER: usize = 300;
const EPS: f64 = 1e-16;
const TINY: f64 = 1e-300;

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Lanczos approximation (g = 7, 9 coefficients), accurate to ~1e-14.
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        return (PI / (PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, &c) in COEF.iter().enumerate() {
        acc += c / (x + (i + 1) as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, 0) = 0` and `P(a, ∞) = 1`; requires `a > 0`, `x ≥ 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x.is_infinite() {
        return 1.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = Γ(a, x) / Γ(a)`.
///
/// `Q(a, 0) = 1` and `Q(a, ∞) = 0`; requires `a > 0`, `x ≥ 0`. This is
/// the χ²-tail helper used by simulation-based calibration:
/// `p = Q(k/2, χ²/2)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x.is_infinite() {
        return 0.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion for `P(a, x)`, convergent for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    let log_prefix = -x + a * x.ln() - ln_gamma(a);
    (sum * log_prefix.exp()).clamp(0.0, 1.0)
}

/// Modified-Lentz continued fraction for `Q(a, x)`, convergent for
/// `x ≥ a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    let log_prefix = -x + a * x.ln() - ln_gamma(a);
    (h * log_prefix.exp()).clamp(0.0, 1.0)
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Computed through the incomplete gamma identity
/// `erfc(x) = Q(1/2, x²)` for `x ≥ 0` and reflection for `x < 0`, which
/// keeps the deep tails accurate (no catastrophic cancellation).
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x >= 0.0 {
        if x == 0.0 {
            1.0
        } else {
            gamma_q(0.5, x * x)
        }
    } else {
        2.0 - erfc(-x)
    }
}

/// Error function `erf(x)`.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x >= 0.0 {
        if x == 0.0 {
            0.0
        } else {
            gamma_p(0.5, x * x)
        }
    } else {
        -erf(-x)
    }
}

/// Standard normal CDF `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile `Φ⁻¹(p)` (inverse CDF).
///
/// Acklam's rational approximation (relative error ≲ 1.15e-9) followed
/// by one Halley refinement step against the erfc-based CDF, giving
/// close to full `f64` accuracy. Edge cases: `Φ⁻¹(0) = −∞`,
/// `Φ⁻¹(1) = +∞`, and `NaN` outside `[0, 1]`.
pub fn std_normal_quantile(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        q * (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5])
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step: e = Φ(x) − p, u = e·√(2π)·e^{x²/2}.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * PI).sqrt() * (x * x / 2.0).exp();
    if u.is_finite() {
        x - u / (1.0 + x * u / 2.0)
    } else {
        x
    }
}

/// Natural log of the beta function `ln B(a, b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// `I_0 = 0`, `I_1 = 1`; requires `a, b > 0` and `x ∈ [0, 1]`.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && b > 0.0,
        "beta_inc requires a, b > 0, got ({a}, {b})"
    );
    assert!(
        (0.0..=1.0).contains(&x),
        "beta_inc requires x in [0, 1], got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let log_prefix = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    let prefix = log_prefix.exp();
    // Use the continued fraction on the side where it converges fast.
    if x < (a + 1.0) / (a + b + 2.0) {
        (prefix * beta_cf(a, b, x) / a).clamp(0.0, 1.0)
    } else {
        (1.0 - prefix * beta_cf(b, a, 1.0 - x) / b).clamp(0.0, 1.0)
    }
}

/// Modified-Lentz continued fraction for the incomplete beta.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Inverse of the regularized incomplete beta: the `x` with
/// `I_x(a, b) = p`.
///
/// Bisection with Newton acceleration; converges to ~1e-14 in `x`.
pub fn beta_inc_inv(a: f64, b: f64, p: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc_inv requires a, b > 0");
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return 1.0;
    }
    let ln_b = ln_beta(a, b);
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    let mut x = 0.5;
    for _ in 0..200 {
        let f = beta_inc(a, b, x) - p;
        if f > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        // Newton step from the current bracket midpoint, falling back to
        // bisection whenever it leaves the bracket.
        let ln_pdf = (a - 1.0) * x.ln() + (b - 1.0) * (1.0 - x).ln() - ln_b;
        let step = f / ln_pdf.exp();
        let newton = x - step;
        x = if newton.is_finite() && newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi)
        };
        if (hi - lo) < 1e-15 && (beta_inc(a, b, x) - p).abs() < 1e-13 {
            break;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(1/2) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-13);
        assert!(ln_gamma(2.0).abs() < 1e-13);
        assert!(close(ln_gamma(5.0), 24.0f64.ln(), 1e-14));
        assert!(close(ln_gamma(0.5), PI.sqrt().ln(), 1e-14));
        // Γ(10.3): reference from the recurrence Γ(x+1) = xΓ(x).
        assert!(close(ln_gamma(10.3), ln_gamma(9.3) + 9.3f64.ln(), 1e-14));
    }

    #[test]
    fn gamma_q_exponential_identity() {
        // Q(1, x) = e^{−x}.
        for &x in &[0.0, 0.1, 0.5, 1.0, 2.5, 10.0, 30.0] {
            assert!(close(gamma_q(1.0, x), (-x).exp(), 1e-13), "x={x}");
        }
    }

    #[test]
    fn gamma_q_half_is_erfc_of_sqrt() {
        // Q(1/2, x) = erfc(√x); spot-check against reference erfc values.
        // erfc(1) = 0.15729920705028513…
        assert!(close(gamma_q(0.5, 1.0), 0.157_299_207_050_285_13, 1e-12));
        // erfc(2) = 0.004677734981063127…
        assert!(close(gamma_q(0.5, 4.0), 4.677_734_981_063_127e-3, 1e-12));
    }

    #[test]
    fn gamma_p_q_are_complementary_and_bounded() {
        for &a in &[0.3, 0.5, 1.0, 2.5, 7.0, 42.0] {
            for &x in &[0.0, 0.01, 0.5, 1.0, 3.0, 10.0, 100.0] {
                let p = gamma_p(a, x);
                let q = gamma_q(a, x);
                assert!((0.0..=1.0).contains(&p), "P({a},{x})={p}");
                assert!((0.0..=1.0).contains(&q), "Q({a},{x})={q}");
                assert!(close(p + q, 1.0, 1e-12), "a={a} x={x}: {p}+{q}");
            }
        }
    }

    #[test]
    fn gamma_q_edge_cases() {
        assert_eq!(gamma_q(3.0, 0.0), 1.0);
        assert_eq!(gamma_q(3.0, f64::INFINITY), 0.0);
        // Deep tail stays in [0, 1] and decreases.
        let q1 = gamma_q(2.0, 50.0);
        let q2 = gamma_q(2.0, 100.0);
        assert!(q1 > q2 && q2 >= 0.0);
    }

    #[test]
    #[should_panic(expected = "gamma_q requires a > 0")]
    fn gamma_q_rejects_nonpositive_shape() {
        let _ = gamma_q(0.0, 1.0);
    }

    #[test]
    fn erf_symmetry_and_reference_values() {
        assert_eq!(erf(0.0), 0.0);
        assert_eq!(erfc(0.0), 1.0);
        // erf(1) = 0.8427007929497149…
        assert!(close(erf(1.0), 0.842_700_792_949_714_9, 1e-13));
        for &x in &[0.2, 1.0, 2.3] {
            assert!(close(erf(-x), -erf(x), 1e-15));
            assert!(close(erfc(-x), 2.0 - erfc(x), 1e-15));
            assert!(close(erf(x) + erfc(x), 1.0, 1e-13));
        }
    }

    #[test]
    fn std_normal_quantile_pinned_values() {
        // Reference values to 1e-9 (R: qnorm).
        assert!(std_normal_quantile(0.5).abs() < 1e-15);
        assert!(close(
            std_normal_quantile(0.975),
            1.959_963_984_540_054,
            1e-12
        ));
        assert!(close(
            std_normal_quantile(0.025),
            -1.959_963_984_540_054,
            1e-12
        ));
        assert!(close(
            std_normal_quantile(0.841_344_746_068_542_9),
            1.0,
            1e-10
        ));
        assert!(close(
            std_normal_quantile(0.99),
            2.326_347_874_040_841,
            1e-12
        ));
        assert!(close(
            std_normal_quantile(1e-10),
            -6.361_340_902_404_056,
            1e-9
        ));
    }

    #[test]
    fn std_normal_quantile_edges_and_tails() {
        assert_eq!(std_normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(std_normal_quantile(1.0), f64::INFINITY);
        assert!(std_normal_quantile(-0.1).is_nan());
        assert!(std_normal_quantile(1.1).is_nan());
        assert!(std_normal_quantile(f64::NAN).is_nan());
        // p → 0⁺ / 1⁻: finite, huge-magnitude, correctly signed.
        let lo = std_normal_quantile(1e-300);
        let hi = std_normal_quantile(1.0 - 1e-16);
        assert!(lo.is_finite() && lo < -37.0, "lo={lo}");
        assert!(hi.is_finite() && hi > 8.0, "hi={hi}");
        // Antisymmetry around 1/2.
        for &p in &[0.25, 0.1, 0.01, 0.002] {
            let a = std_normal_quantile(p);
            let b = std_normal_quantile(1.0 - p);
            assert!((a + b).abs() < 1e-12, "p={p}: {a} vs {b}");
        }
    }

    #[test]
    fn std_normal_quantile_inverts_cdf() {
        for i in 1..100 {
            let p = i as f64 / 100.0;
            let x = std_normal_quantile(p);
            assert!(close(std_normal_cdf(x), p, 1e-13), "p={p}");
        }
    }

    #[test]
    fn beta_inc_reference_values() {
        // I_x(1, 1) = x.
        for &x in &[0.0, 0.25, 0.5, 0.99, 1.0] {
            assert!(close(beta_inc(1.0, 1.0, x), x, 1e-13));
        }
        // I_x(2, 2) = x²(3 − 2x).
        for &x in &[0.1, 0.5, 0.9] {
            assert!(close(beta_inc(2.0, 2.0, x), x * x * (3.0 - 2.0 * x), 1e-12));
        }
        // Symmetry: I_x(a, b) = 1 − I_{1−x}(b, a).
        assert!(close(
            beta_inc(2.5, 0.7, 0.3),
            1.0 - beta_inc(0.7, 2.5, 0.7),
            1e-12
        ));
    }

    #[test]
    fn beta_inc_inv_round_trips() {
        for &(a, b) in &[(1.0, 1.0), (2.0, 3.0), (0.5, 0.5), (5.0, 1.5)] {
            for i in 1..20 {
                let p = i as f64 / 20.0;
                let x = beta_inc_inv(a, b, p);
                assert!(
                    close(beta_inc(a, b, x), p, 1e-10),
                    "a={a} b={b} p={p} x={x}"
                );
            }
            assert_eq!(beta_inc_inv(a, b, 0.0), 0.0);
            assert_eq!(beta_inc_inv(a, b, 1.0), 1.0);
        }
    }
}
