//! Validated continuous distributions for GuBPI.
//!
//! The SPCF front end desugars `sample D(…)` and `observe … from D` into
//! primitive pdf/quantile calls (see `gubpi_lang::prim`), and the
//! inference baselines need cdfs and samplers. This crate provides that
//! numeric foundation: the [`ContinuousDist`] trait with `pdf`, `cdf`,
//! `quantile` and `sample`, the five distributions of the paper's
//! benchmark suite ([`Normal`], [`Uniform`], [`Beta`], [`Cauchy`],
//! [`Exponential`]), interval liftings of the densities
//! ([`ContinuousDist::pdf_interval`]) for the interval trace semantics,
//! and the special functions backing them in [`math`].
//!
//! Parameter validity is enforced at construction time: every `new`
//! panics on parameters outside the distribution's domain (`σ ≤ 0`,
//! `b ≤ a`, NaN, …), so a constructed distribution is always usable.
//!
//! # Example
//!
//! ```
//! use gubpi_dist::{ContinuousDist, Normal};
//!
//! let n = Normal::standard();
//! assert!((n.cdf(n.quantile(0.975)) - 0.975).abs() < 1e-12);
//! ```

use gubpi_interval::Interval;

pub mod math;

use math::{beta_inc, beta_inc_inv, ln_beta, std_normal_cdf, std_normal_quantile};

/// A continuous distribution over (a subset of) the reals.
pub trait ContinuousDist {
    /// Probability density at `x` (0 outside the support; may be `+∞` at
    /// an integrable singularity, e.g. `Beta(½, ½)` at the endpoints).
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function `P(X ≤ x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Quantile (inverse CDF): the smallest `x` with `cdf(x) ≥ p`.
    ///
    /// Returns the infimum/supremum of the support at `p = 0` / `p = 1`
    /// (which may be `±∞`) and `NaN` outside `[0, 1]`.
    fn quantile(&self, p: f64) -> f64;

    /// Draws one value by inverse-transform sampling.
    fn sample<R: rand::Rng>(&self, rng: &mut R) -> f64
    where
        Self: Sized,
    {
        // Uniform on the *open* interval (0, 1): the bin midpoints
        // ((k + ½)·2⁻⁵³) never hit 0 or 1, so quantile() cannot return
        // ±∞ and poison downstream running statistics.
        let u = ((rng.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64);
        self.quantile(u)
    }

    /// An interval enclosure of `{ pdf(x) | x ∈ xs }`.
    ///
    /// The default is the sound-but-loose `[0, ∞]`; every distribution in
    /// this crate overrides it with an exact range.
    fn pdf_interval(&self, xs: Interval) -> Interval {
        let _ = xs;
        Interval::NON_NEG
    }
}

fn check_finite(value: f64, what: &str) -> f64 {
    assert!(value.is_finite(), "{what} must be finite, got {value}");
    value
}

/// The normal distribution `N(μ, σ²)`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// `N(μ, σ²)`.
    ///
    /// # Panics
    ///
    /// Panics unless `σ > 0` and both parameters are finite.
    pub fn new(mu: f64, sigma: f64) -> Normal {
        check_finite(mu, "normal mean");
        check_finite(sigma, "normal stddev");
        assert!(sigma > 0.0, "normal stddev must be positive, got {sigma}");
        Normal { mu, sigma }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Normal {
        Normal {
            mu: 0.0,
            sigma: 1.0,
        }
    }

    /// Mean `μ`.
    pub fn mean(&self) -> f64 {
        self.mu
    }

    /// Standard deviation `σ`.
    pub fn stddev(&self) -> f64 {
        self.sigma
    }
}

impl ContinuousDist for Normal {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mu) / self.sigma)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.mu + self.sigma * std_normal_quantile(p)
    }

    fn pdf_interval(&self, xs: Interval) -> Interval {
        // The density is unimodal with its maximum at μ.
        xs.map_unimodal_max(self.mu, |x| self.pdf(x))
    }
}

/// The uniform distribution on `[a, b]`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Uniform {
    a: f64,
    b: f64,
}

impl Uniform {
    /// `Uniform(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics unless `a < b` and both endpoints are finite.
    pub fn new(a: f64, b: f64) -> Uniform {
        check_finite(a, "uniform lower endpoint");
        check_finite(b, "uniform upper endpoint");
        assert!(a < b, "uniform requires a < b, got [{a}, {b}]");
        Uniform { a, b }
    }
}

impl ContinuousDist for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if (self.a..=self.b).contains(&x) {
            1.0 / (self.b - self.a)
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        ((x - self.a) / (self.b - self.a)).clamp(0.0, 1.0)
    }

    fn quantile(&self, p: f64) -> f64 {
        if p.is_nan() || !(0.0..=1.0).contains(&p) {
            return f64::NAN;
        }
        self.a + p * (self.b - self.a)
    }

    fn pdf_interval(&self, xs: Interval) -> Interval {
        let h = 1.0 / (self.b - self.a);
        let support = Interval::new(self.a, self.b);
        if !xs.intersects(&support) {
            Interval::ZERO
        } else if xs.subset_of(&support) {
            Interval::point(h)
        } else {
            Interval::new(0.0, h)
        }
    }
}

/// The beta distribution `Beta(α, β)` on `[0, 1]`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Beta {
    alpha: f64,
    beta: f64,
    ln_norm: f64,
}

impl Beta {
    /// `Beta(α, β)`.
    ///
    /// # Panics
    ///
    /// Panics unless `α > 0` and `β > 0` (finite).
    pub fn new(alpha: f64, beta: f64) -> Beta {
        check_finite(alpha, "beta shape α");
        check_finite(beta, "beta shape β");
        assert!(
            alpha > 0.0 && beta > 0.0,
            "beta shapes must be positive, got ({alpha}, {beta})"
        );
        Beta {
            alpha,
            beta,
            ln_norm: ln_beta(alpha, beta),
        }
    }
}

impl ContinuousDist for Beta {
    fn pdf(&self, x: f64) -> f64 {
        if !(0.0..=1.0).contains(&x) {
            return 0.0;
        }
        // Endpoint conventions: with α < 1 (resp. β < 1) the density
        // diverges at 0 (resp. 1); with α = 1 it is finite and positive.
        let (a, b) = (self.alpha, self.beta);
        let endpoint_pdf = |shape: f64| {
            if shape < 1.0 {
                f64::INFINITY
            } else if shape == 1.0 {
                (-self.ln_norm).exp()
            } else {
                0.0
            }
        };
        if x == 0.0 {
            return endpoint_pdf(a);
        }
        if x == 1.0 {
            return endpoint_pdf(b);
        }
        ((a - 1.0) * x.ln() + (b - 1.0) * (1.0 - x).ln() - self.ln_norm).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else if x >= 1.0 {
            1.0
        } else {
            beta_inc(self.alpha, self.beta, x)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        beta_inc_inv(self.alpha, self.beta, p)
    }

    fn pdf_interval(&self, xs: Interval) -> Interval {
        let support = Interval::UNIT;
        // The density is 0 outside [0, 1]; if the query pokes out of the
        // support the range must include that 0.
        let sticks_out = !xs.subset_of(&support);
        let Some(xs) = xs.meet(support) else {
            return Interval::ZERO;
        };
        let (a, b) = (self.alpha, self.beta);
        let raw = self.pdf_interval_on_support(xs, a, b);
        if sticks_out {
            raw.join(Interval::ZERO)
        } else {
            raw
        }
    }
}

impl Beta {
    /// Exact range of the density over `xs ⊆ [0, 1]`.
    fn pdf_interval_on_support(&self, xs: Interval, a: f64, b: f64) -> Interval {
        if a >= 1.0 && b >= 1.0 {
            // Unimodal (constant when α = β = 1) with interior mode.
            let mode = if a + b > 2.0 {
                (a - 1.0) / (a + b - 2.0)
            } else {
                0.5
            };
            xs.map_unimodal_max(mode, |x| self.pdf(x))
        } else {
            // A shape parameter below 1 makes the density diverge at the
            // corresponding endpoint; return the exact hull over the
            // clipped interval by checking endpoints plus any interior
            // critical point.
            let lo_val = self.pdf(xs.lo());
            let hi_val = self.pdf(xs.hi());
            let mut lo = lo_val.min(hi_val);
            let hi = lo_val.max(hi_val);
            if a < 1.0 && b < 1.0 {
                // U-shaped: interior minimum at (1−α)/(2−α−β).
                let m = (1.0 - a) / (2.0 - a - b);
                if xs.contains(m) {
                    lo = lo.min(self.pdf(m));
                }
            }
            // Otherwise exactly one shape is < 1: d/dx ln pdf =
            // (α−1)/x − (β−1)/(1−x) has both terms of the same sign, so
            // the density is strictly monotone on (0, 1) and the
            // endpoint values above already span the exact range.
            Interval::new(lo, hi)
        }
    }
}

/// The Cauchy distribution with location `x₀` and scale `γ`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Cauchy {
    x0: f64,
    gamma: f64,
}

impl Cauchy {
    /// `Cauchy(x₀, γ)`.
    ///
    /// # Panics
    ///
    /// Panics unless `γ > 0` and both parameters are finite.
    pub fn new(x0: f64, gamma: f64) -> Cauchy {
        check_finite(x0, "cauchy location");
        check_finite(gamma, "cauchy scale");
        assert!(gamma > 0.0, "cauchy scale must be positive, got {gamma}");
        Cauchy { x0, gamma }
    }
}

impl ContinuousDist for Cauchy {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.x0) / self.gamma;
        1.0 / (std::f64::consts::PI * self.gamma * (1.0 + z * z))
    }

    fn cdf(&self, x: f64) -> f64 {
        0.5 + ((x - self.x0) / self.gamma).atan() / std::f64::consts::PI
    }

    fn quantile(&self, p: f64) -> f64 {
        if p.is_nan() || !(0.0..=1.0).contains(&p) {
            return f64::NAN;
        }
        if p == 0.0 {
            return f64::NEG_INFINITY;
        }
        if p == 1.0 {
            return f64::INFINITY;
        }
        self.x0 + self.gamma * (std::f64::consts::PI * (p - 0.5)).tan()
    }

    fn pdf_interval(&self, xs: Interval) -> Interval {
        xs.map_unimodal_max(self.x0, |x| self.pdf(x))
    }
}

/// The exponential distribution with rate `λ` (density `λe^{−λx}` on
/// `[0, ∞)`).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// `Exp(λ)`.
    ///
    /// # Panics
    ///
    /// Panics unless `λ > 0` (finite).
    pub fn new(rate: f64) -> Exponential {
        check_finite(rate, "exponential rate");
        assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
        Exponential { rate }
    }
}

impl ContinuousDist for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-self.rate * x).exp_m1()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        if p.is_nan() || !(0.0..=1.0).contains(&p) {
            return f64::NAN;
        }
        if p == 1.0 {
            return f64::INFINITY;
        }
        // −ln(1−p)/λ via ln_1p for accuracy near p = 0.
        -(-p).ln_1p() / self.rate
    }

    fn pdf_interval(&self, xs: Interval) -> Interval {
        if xs.hi() < 0.0 {
            return Interval::ZERO;
        }
        let lo_x = xs.lo().max(0.0);
        let hi_val = self.pdf(lo_x);
        let lo_val = if xs.lo() < 0.0 || xs.hi().is_infinite() {
            0.0
        } else {
            self.pdf(xs.hi())
        };
        Interval::new(lo_val, hi_val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    #[test]
    fn normal_reference_values() {
        let n = Normal::standard();
        assert!(close(n.pdf(0.0), 0.398_942_280_401_432_7, 1e-15));
        assert!(close(n.pdf(1.0), 0.241_970_724_519_143_37, 1e-15));
        assert_eq!(n.cdf(0.0), 0.5);
        assert!(close(n.cdf(1.96), 0.975_002_104_851_779_5, 1e-13));
        assert!(close(n.quantile(0.975), 1.959_963_984_540_054, 1e-12));
        let m = Normal::new(2.0, 3.0);
        assert!(close(m.quantile(m.cdf(4.2)), 4.2, 1e-12));
        assert_eq!(m.mean(), 2.0);
        assert_eq!(m.stddev(), 3.0);
    }

    #[test]
    #[should_panic(expected = "stddev must be positive")]
    fn normal_rejects_bad_sigma() {
        let _ = Normal::new(0.0, 0.0);
    }

    #[test]
    fn uniform_basics() {
        let u = Uniform::new(-1.0, 3.0);
        assert_eq!(u.pdf(0.0), 0.25);
        assert_eq!(u.pdf(5.0), 0.0);
        assert_eq!(u.cdf(-1.0), 0.0);
        assert_eq!(u.cdf(3.0), 1.0);
        assert_eq!(u.cdf(1.0), 0.5);
        assert_eq!(u.quantile(0.5), 1.0);
        assert_eq!(u.quantile(0.0), -1.0);
        assert_eq!(u.quantile(1.0), 3.0);
    }

    #[test]
    fn beta_reference_values() {
        let b = Beta::new(2.0, 3.0);
        // pdf(x) = 12 x (1−x)².
        assert!(close(b.pdf(0.5), 1.5, 1e-13));
        assert!(close(b.cdf(0.5), beta_inc(2.0, 3.0, 0.5), 1e-15));
        assert!(close(b.quantile(b.cdf(0.3)), 0.3, 1e-10));
        // Symmetric case: median at 1/2.
        assert!(close(Beta::new(2.0, 2.0).quantile(0.5), 0.5, 1e-12));
        // α < 1 diverges at 0, is zero nowhere inside.
        let s = Beta::new(0.5, 0.5);
        assert_eq!(s.pdf(0.0), f64::INFINITY);
        assert_eq!(s.pdf(1.0), f64::INFINITY);
        assert!(s.pdf(0.5) > 0.0);
        assert_eq!(s.pdf(-0.1), 0.0);
    }

    #[test]
    fn cauchy_reference_values() {
        let c = Cauchy::new(0.0, 1.0);
        assert!(close(c.pdf(0.0), 1.0 / std::f64::consts::PI, 1e-15));
        assert_eq!(c.cdf(0.0), 0.5);
        assert!(close(c.quantile(0.75), 1.0, 1e-13));
        assert!(close(c.quantile(0.25), -1.0, 1e-13));
        assert_eq!(c.quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(c.quantile(1.0), f64::INFINITY);
        let shifted = Cauchy::new(2.0, 0.5);
        assert!(close(shifted.quantile(shifted.cdf(2.7)), 2.7, 1e-12));
    }

    #[test]
    fn exponential_reference_values() {
        let e = Exponential::new(1.0);
        assert_eq!(e.pdf(0.0), 1.0);
        assert_eq!(e.pdf(-1.0), 0.0);
        assert!(close(e.cdf(1.0), 1.0 - (-1.0f64).exp(), 1e-15));
        assert!(close(e.quantile(1.0 - (-1.0f64).exp()), 1.0, 1e-13));
        assert_eq!(e.quantile(0.0), 0.0);
        assert_eq!(e.quantile(1.0), f64::INFINITY);
        let fast = Exponential::new(4.0);
        assert!(close(fast.quantile(fast.cdf(0.3)), 0.3, 1e-13));
    }

    #[test]
    fn quantile_cdf_round_trip_on_grid() {
        let dists: Vec<Box<dyn Fn(f64) -> f64>> = vec![
            Box::new(|p| Normal::new(1.0, 2.0).quantile(p)),
            Box::new(|p| Uniform::new(0.0, 1.0).quantile(p)),
            Box::new(|p| Beta::new(2.0, 5.0).quantile(p)),
            Box::new(|p| Cauchy::new(0.0, 1.0).quantile(p)),
            Box::new(|p| Exponential::new(0.7).quantile(p)),
        ];
        for q in &dists {
            let mut last = f64::NEG_INFINITY;
            for i in 1..50 {
                let p = i as f64 / 50.0;
                let x = q(p);
                assert!(x >= last, "quantiles must be monotone");
                last = x;
            }
        }
    }

    #[test]
    fn sampling_matches_cdf() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        let n = Normal::new(0.0, 1.0);
        let draws = 20_000;
        let below_zero = (0..draws).filter(|_| n.sample(&mut rng) < 0.0).count() as f64;
        assert!((below_zero / draws as f64 - 0.5).abs() < 0.02);
        let e = Exponential::new(2.0);
        let mean: f64 = (0..draws).map(|_| e.sample(&mut rng)).sum::<f64>() / draws as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let _ = rng.random::<f64>();
    }

    #[test]
    fn pdf_intervals_enclose_point_evaluations() {
        let xs = Interval::new(-0.5, 1.5);
        let grid = |k: usize| xs.lo() + (xs.hi() - xs.lo()) * k as f64 / 40.0;
        macro_rules! check {
            ($d:expr) => {
                let d = $d;
                let range = d.pdf_interval(xs);
                for k in 0..=40 {
                    let x = grid(k);
                    let fx = d.pdf(x);
                    assert!(
                        range.outward().contains(fx),
                        "pdf({x}) = {fx} outside {range:?}"
                    );
                }
            };
        }
        check!(Normal::new(0.3, 0.7));
        check!(Uniform::new(0.0, 1.0));
        check!(Beta::new(2.0, 3.0));
        check!(Beta::new(0.5, 0.5));
        check!(Beta::new(0.5, 2.0));
        check!(Cauchy::new(0.2, 0.4));
        check!(Exponential::new(1.3));
    }

    #[test]
    fn uniform_pdf_interval_cases() {
        let u = Uniform::new(0.0, 2.0);
        assert_eq!(
            u.pdf_interval(Interval::new(0.5, 1.0)),
            Interval::point(0.5)
        );
        assert_eq!(u.pdf_interval(Interval::new(3.0, 4.0)), Interval::ZERO);
        assert_eq!(
            u.pdf_interval(Interval::new(-1.0, 1.0)),
            Interval::new(0.0, 0.5)
        );
    }
}
