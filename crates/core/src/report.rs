//! Plain-text rendering of bound results (GuBPI-style output).

use std::fmt::Write as _;

use crate::histogram::HistogramBounds;

/// Renders a histogram's normalised bounds as an ASCII chart, one row per
/// bin:
///
/// ```text
/// [ 0.00,  0.30) 0.1234 0.1250 ####·
/// ```
///
/// `#` marks the guaranteed (lower-bound) mass, `·` the additional mass
/// admitted by the upper bound.
pub fn render_histogram(h: &HistogramBounds, width: usize) -> String {
    let rows = h.normalized();
    let mut out = String::new();
    let max_hi = rows.iter().map(|r| r.hi).fold(0.0f64, f64::max).max(1e-12);
    for r in &rows {
        let lo_cells = ((r.lo / max_hi) * width as f64).round() as usize;
        let hi_cells = ((r.hi / max_hi) * width as f64).round() as usize;
        let _ = write!(
            out,
            "[{:8.3}, {:8.3})  {:>8.5} {:>8.5}  ",
            r.bin.lo(),
            r.bin.hi(),
            r.lo,
            r.hi
        );
        out.push_str(&"#".repeat(lo_cells));
        out.push_str(&"·".repeat(hi_cells.saturating_sub(lo_cells)));
        out.push('\n');
    }
    let (z_lo, z_hi) = h.z_bounds();
    let _ = writeln!(out, "Z in [{z_lo:.6}, {z_hi:.6}]");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathbounds::BoundSink;
    use gubpi_interval::Interval;

    #[test]
    fn renders_rows_and_z() {
        let mut h = HistogramBounds::new(Interval::new(0.0, 1.0), 2);
        h.add(Interval::new(0.1, 0.4), 0.5, 0.6);
        h.add(Interval::new(0.6, 0.9), 0.4, 0.5);
        let s = render_histogram(&h, 20);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("Z in ["));
        assert!(s.contains('#'));
    }
}
