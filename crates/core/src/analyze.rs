//! The analyzer facade (Algorithm 1).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gubpi_analysis::{lint_program, Lint, ProgramFacts};
use gubpi_interval::Interval;
use gubpi_lang::{infer, parse, LangError, Program, TypeMap};
use gubpi_pool::{
    run_jobs_cancellable, run_jobs_with, CancelToken, PathJob, SweepProgress, Threads, WorkerPool,
};
use gubpi_symbolic::{
    symbolic_paths_report_cancellable, ExecReport, KernelSeed, SymExecOptions, SymPath,
};
use gubpi_types::{infer_interval_types, IntervalTyping};

use crate::histogram::HistogramBounds;
use crate::pathbounds::{
    coarse_path_enclosure, linear_applicable, plan_path_grid_only_seeded, plan_path_query_seeded,
    plan_path_seeded, run_adaptive_refinement, run_adaptive_refinement_cancellable,
    tail_substituted, BoundSink, GridRefiner, PathBoundOptions, QueryFold, RefineOptions, Region,
};

/// Which per-path semantics to use.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Method {
    /// Linear semantics where applicable, grid otherwise (§6.4 + §6.3).
    #[default]
    Auto,
    /// Force the standard grid semantics (§6.3) for every path.
    Grid,
}

/// End-to-end analysis options.
#[derive(Copy, Clone, Debug)]
pub struct AnalysisOptions {
    /// Symbolic execution (depth limit `D`, path caps).
    pub sym: SymExecOptions,
    /// Per-path bounding (splits, volume method).
    pub bounds: PathBoundOptions,
    /// Semantics selection.
    pub method: Method,
    /// Participation width on the persistent worker pool. Bounds are
    /// bit-identical across every setting (see `gubpi_core::pool`).
    pub threads: Threads,
    /// Let the symbolic executor skip statically dead branches and
    /// zero-score continuations (pre-execution static analysis). Pruning
    /// only removes paths contributing exactly `0.0` to both bounds, so
    /// disabling it (`repro --no-prune`) reproduces bit-identical bounds
    /// with more enumerated paths — the field-regression escape hatch.
    pub prune: bool,
    /// Bound grid-destined paths by **gap-driven adaptive refinement**
    /// (coarse seed grid + worklist bisection of the cells contributing
    /// most to the upper−lower gap) instead of the one-shot uniform
    /// sweep, at the *same* cell budget. Histograms always use the
    /// uniform sweep (their sinks need the full value-range partition).
    /// The default honours the `GUBPI_NO_REFINE` escape hatch (`repro
    /// --no-refine`), under which query bounds are bit-identical to the
    /// uniform sweep.
    pub refine: bool,
    /// Stop refining a query early once the summed gap of its refined
    /// paths drops to this value; `0.0` (default) spends the full cell
    /// budget. Per-path results computed under a positive gap target
    /// depend on the whole query's worklist, so they bypass the memo
    /// cache (purity would not survive sharing them).
    pub gap_target: f64,
    /// Maximum bisection depth below the adaptive seed grid.
    pub max_refine_depth: u32,
}

impl Default for AnalysisOptions {
    fn default() -> AnalysisOptions {
        let refine = RefineOptions::default();
        AnalysisOptions {
            sym: SymExecOptions::default(),
            bounds: PathBoundOptions::default(),
            method: Method::default(),
            threads: Threads::default(),
            prune: true,
            refine: refine.refine,
            gap_target: refine.gap_target,
            max_refine_depth: refine.max_refine_depth,
        }
    }
}

/// The refinement configuration as an exact, hashable key component:
/// `(refine, gap_target bits, max_refine_depth)`. `f64::to_bits` keys
/// the gap target exactly (the float itself has no `Eq`/`Hash`).
type RefineKey = (bool, u64, u32);

/// `(path fingerprint, query lo bits, query hi bits, bounding options,
/// method, refinement key)`. The fingerprint is a 64-bit structural
/// hash, so every cached result additionally stores the [`SymPath`] it
/// was computed for and lookups verify **structural equality** before
/// reusing an entry — a fingerprint collision costs one extra bucket
/// entry, never a wrong bound. The option values are keyed exactly
/// (derived `Eq`/`Hash`), so differing configurations can never alias
/// — even ones added to [`PathBoundOptions`] later.
type QueryKey = (u64, u64, u64, PathBoundOptions, Method, RefineKey);

/// One verified cache entry.
struct CacheEntry {
    /// The path the result belongs to (hits re-verify it structurally).
    path: SymPath,
    /// The memoised `(lo, hi)` bounds.
    bounds: (f64, f64),
    /// Last-access stamp for the coarse-LRU eviction policy; refreshed
    /// on every hit, consulted only when the entry cap overflows.
    stamp: u64,
}

/// Hit/miss/eviction counters of a (possibly shared) query cache.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Per-path lookups answered from the cache.
    pub hits: u64,
    /// Per-path lookups that had to compute.
    pub misses: u64,
    /// Entries dropped by the bounded mode's coarse-LRU policy.
    pub evictions: u64,
}

impl CacheStats {
    /// The `(hits, misses)` pair (the PR-2 counter shape).
    pub fn hit_miss(self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// The mutex-protected cache storage plus a running entry count, so
/// the under-cap check at insert time is O(1) instead of a full map
/// scan under the global cache mutex.
#[derive(Default)]
struct CacheMap {
    buckets: HashMap<QueryKey, Vec<CacheEntry>>,
    entries: usize,
}

/// Memo cache for per-path query bounds, shared across worker threads
/// (and, via [`SharedQueryCache`], across `Analyzer` instances).
///
/// Per-path bounding is pure, so a hit returns exactly the value a
/// recomputation would — caching cannot perturb the determinism
/// guarantee.
#[derive(Default)]
struct QueryCache {
    map: Mutex<CacheMap>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Monotone access clock feeding the entry stamps (always advanced
    /// under the map mutex, so stamps are unique and ordered).
    clock: AtomicU64,
    /// Entry cap; `None` is the unbounded PR-3 behaviour.
    cap: Option<usize>,
}

/// A handle to a per-path memo cache that can be shared across
/// [`Analyzer`] instances (the cheap `Clone` copies the handle, not the
/// cache).
///
/// Analyzing the same program — or programs sharing structurally equal
/// paths — under several analyzers (one per thread, one per request,
/// re-parsed from source, …) normally recomputes every path bound.
/// Constructing the analyzers with [`Analyzer::from_source_with_cache`]
/// instead lets later instances hit the warm entries:
///
/// ```
/// use gubpi_core::{AnalysisOptions, Analyzer, SharedQueryCache};
/// use gubpi_interval::Interval;
///
/// let cache = SharedQueryCache::new();
/// let opts = AnalysisOptions::default();
/// let a = Analyzer::from_source_with_cache("sample", opts, &cache).unwrap();
/// let b = Analyzer::from_source_with_cache("sample", opts, &cache).unwrap();
/// let u = Interval::new(0.0, 0.5);
/// let ra = a.denotation_bounds(u); // computes, fills the cache
/// let rb = b.denotation_bounds(u); // hits the shared entries
/// assert_eq!(ra, rb);
/// assert!(cache.stats().hits > 0, "second analyzer must hit");
/// ```
///
/// Entries are verified by structural path equality before reuse (see
/// [`QueryKey`]), so sharing is sound even across unrelated programs.
/// Hit/miss counters live in the shared cache: each per-path lookup is
/// counted exactly once, no matter which analyzer issued it.
///
/// # Bounded mode
///
/// A persistent engine turns an unbounded memo cache into a slow leak,
/// so [`SharedQueryCache::with_capacity`] installs an entry cap with
/// **deterministic coarse-LRU eviction**: every entry carries a
/// last-access stamp (refreshed once per query lookup pass), and when
/// an insert pass overflows the cap, exactly the oldest-stamped surplus
/// entries are dropped in one batch. Eviction is a pure function of the
/// access sequence, and purity of bounding means a re-query after
/// eviction recomputes bit-identical values — capacity can change
/// wall-clock time, never a result. Evictions are counted in
/// [`SharedQueryCache::stats`].
#[derive(Clone, Default)]
pub struct SharedQueryCache {
    inner: Arc<QueryCache>,
}

impl SharedQueryCache {
    /// A fresh, empty, **unbounded** cache.
    pub fn new() -> SharedQueryCache {
        SharedQueryCache::default()
    }

    /// A fresh cache holding at most `cap` memoised per-path results,
    /// evicting the least-recently-used entries (coarse, batched) on
    /// overflow.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0` — a cache that can hold nothing would evict
    /// every insert immediately; disable caching by not sharing the
    /// cache instead.
    pub fn with_capacity(cap: usize) -> SharedQueryCache {
        assert!(cap > 0, "cache capacity must be positive");
        SharedQueryCache {
            inner: Arc::new(QueryCache {
                cap: Some(cap),
                ..QueryCache::default()
            }),
        }
    }

    /// The entry cap, if this cache is bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.inner.cap
    }

    /// Counters accumulated by every analyzer attached to this cache.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            evictions: self.inner.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of memoised `(path, query, options)` results.
    pub fn entry_count(&self) -> usize {
        self.inner.map.lock().expect("cache poisoned").entries
    }

    /// Drops every memoised result and resets the counters. Affects
    /// every analyzer sharing the cache; results are unaffected because
    /// bounding is pure.
    pub fn clear(&self) {
        {
            let mut map = self.inner.map.lock().expect("cache poisoned");
            map.buckets.clear();
            map.entries = 0;
        }
        self.inner.hits.store(0, Ordering::Relaxed);
        self.inner.misses.store(0, Ordering::Relaxed);
        self.inner.evictions.store(0, Ordering::Relaxed);
    }

    /// Batch-evicts the oldest-stamped entries until the cap is met.
    /// Must be called with the map mutex held (`map` proves it).
    fn enforce_cap(&self, map: &mut CacheMap) {
        let Some(cap) = self.inner.cap else { return };
        if map.entries <= cap {
            return;
        }
        let overflow = map.entries - cap;
        // Stamps are unique (the clock only advances under this mutex),
        // so the `overflow`-th smallest stamp is an exact cutoff.
        let mut stamps: Vec<u64> = map
            .buckets
            .values()
            .flat_map(|bucket| bucket.iter().map(|e| e.stamp))
            .collect();
        let (_, cutoff, _) = stamps.select_nth_unstable(overflow - 1);
        let cutoff = *cutoff;
        map.buckets.retain(|_, bucket| {
            bucket.retain(|e| e.stamp > cutoff);
            !bucket.is_empty()
        });
        map.entries -= overflow;
        self.inner
            .evictions
            .fetch_add(overflow as u64, Ordering::Relaxed);
    }

    /// Next access stamp; call only with the map mutex held.
    fn tick(&self) -> u64 {
        self.inner.clock.fetch_add(1, Ordering::Relaxed)
    }
}

/// A query whose parameters cannot denote a valid measurable set, caught
/// at the [`Analyzer`] API boundary.
///
/// Raw endpoints arrive from CLIs, config files and remote requests;
/// without this validation a `NaN` or inverted pair would reach
/// `Interval::new` and panic deep inside the analysis — possibly
/// unwinding a worker thread mid-pool. The `try_*` query methods reject
/// such inputs up front with a typed, recoverable error.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum QueryError {
    /// The endpoints do not form an interval (`NaN`, or `lo > hi`).
    InvalidInterval {
        /// Requested lower endpoint.
        lo: f64,
        /// Requested upper endpoint.
        hi: f64,
    },
    /// A histogram domain must be bounded with positive width.
    InvalidDomain {
        /// Requested lower edge.
        lo: f64,
        /// Requested upper edge.
        hi: f64,
    },
    /// A histogram needs at least one bin.
    NoBins,
    /// The request's deadline had already expired before any analysis
    /// work could start, so not even a degraded bound exists.
    DeadlineExceeded,
    /// A worker task panicked while serving this request. The panic was
    /// contained at the task boundary — the pool and server remain
    /// serviceable — but this request has no sound result.
    WorkerPanicked,
    /// The server's admission queue was full; the request was rejected
    /// before any work was scheduled. Retry later.
    Overloaded,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::InvalidInterval { lo, hi } => {
                write!(f, "invalid query interval endpoints [{lo}, {hi}]")
            }
            QueryError::InvalidDomain { lo, hi } => write!(
                f,
                "histogram domain [{lo}, {hi}] must be bounded with positive width"
            ),
            QueryError::NoBins => write!(f, "histogram needs at least one bin"),
            QueryError::DeadlineExceeded => {
                write!(f, "deadline expired before analysis could start")
            }
            QueryError::WorkerPanicked => {
                write!(f, "a worker task panicked while serving this request")
            }
            QueryError::Overloaded => write!(f, "server overloaded; request rejected"),
        }
    }
}

impl std::error::Error for QueryError {}

/// The result of a deadline-aware query: guaranteed `(lo, hi)` bounds
/// plus how they were obtained.
///
/// The bounds are **always sound** — when a query's [`CancelToken`]
/// fires mid-analysis, every region the sweep never reached contributes
/// its coarse whole-box enclosure instead of a refined value, so the
/// enclosure only widens, never tears. `degraded` marks exactly that
/// case; an undegraded outcome is bit-identical to the query run
/// without any token.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct QueryOutcome {
    /// Guaranteed lower bound.
    pub lo: f64,
    /// Guaranteed upper bound.
    pub hi: f64,
    /// Whether cancellation forced any part of the result to fall back
    /// to a coarse enclosure (including ⊤-truncation of the symbolic
    /// path set itself when execution was cancelled).
    pub degraded: bool,
    /// Fraction of the planned bounding work (grid cells / refinement
    /// budget) that actually ran, in `[0, 1]`; `1.0` for undegraded
    /// outcomes.
    pub completeness: f64,
}

impl QueryOutcome {
    /// The bounds as a pair.
    pub fn bounds(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }
}

/// Validates raw query endpoints into an [`Interval`].
fn valid_interval(lo: f64, hi: f64) -> Result<Interval, QueryError> {
    Interval::try_new(lo, hi).ok_or(QueryError::InvalidInterval { lo, hi })
}

/// Structural path equality with an `Arc` pointer fast path.
///
/// Cache entries cloned from an analyzer's own path share every inner
/// `Arc` with it, so a same-analyzer re-lookup short-circuits on
/// pointer identity (O(#constraints + #scores) pointer compares) —
/// important because the comparison runs under the cache mutex. Only
/// genuinely cross-analyzer hits fall through to the derived
/// `SymPath::eq`, which stays the single source of truth: a field
/// added to `SymPath` later is automatically part of the verification,
/// never silently ignored.
fn same_path(a: &SymPath, b: &SymPath) -> bool {
    let arc_identical =
        |x: &Arc<gubpi_symbolic::SymVal>, y: &Arc<gubpi_symbolic::SymVal>| Arc::ptr_eq(x, y);
    let identical = a.n_samples == b.n_samples
        && a.truncated == b.truncated
        && a.budget_truncated == b.budget_truncated
        && a.tail == b.tail
        && a.constraints.len() == b.constraints.len()
        && a.scores.len() == b.scores.len()
        && arc_identical(&a.result, &b.result)
        && a.constraints
            .iter()
            .zip(&b.constraints)
            .all(|(x, y)| x.dir == y.dir && arc_identical(&x.value, &y.value))
        && a.scores
            .iter()
            .zip(&b.scores)
            .all(|(x, y)| arc_identical(x, y));
    identical || a == b
}

/// A prepared analysis: program parsed, typed, symbolically executed.
///
/// Queries and histograms reuse the path set, so asking many questions of
/// one program costs one symbolic execution; repeated or overlapping
/// queries additionally hit a per-path memo cache (see
/// [`Analyzer::cache_stats`]). All parallel work — symbolic frontier
/// forks and region sweeps alike — runs on a persistent
/// [`WorkerPool`] (the process-global pool unless an explicit one is
/// supplied via [`Analyzer::from_source_with`]).
pub struct Analyzer {
    program: Program,
    simple: TypeMap,
    typing: IntervalTyping,
    /// Pre-execution static facts (intervals, weights, reachability) —
    /// computed once per program, before symbolic execution.
    facts: ProgramFacts,
    /// Pruning / ⊤-truncation census of the symbolic execution.
    exec_report: ExecReport,
    /// Whether a deadline token cancelled symbolic execution itself —
    /// the path set is then a sound ⊤-truncated coarsening and every
    /// query on this analyzer reports `degraded`.
    exec_cancelled: bool,
    /// Per-program kernel compilation seed derived from the facts.
    seed: KernelSeed,
    paths: Vec<SymPath>,
    /// `paths[i].fingerprint()`, precomputed once for the memo cache.
    fingerprints: Vec<u64>,
    cache: SharedQueryCache,
    pool: WorkerPool,
    opts: AnalysisOptions,
}

impl Analyzer {
    /// Parses, type-checks and symbolically executes `source`.
    ///
    /// # Errors
    ///
    /// Propagates lexing, parsing and simple-type errors.
    pub fn from_source(source: &str, opts: AnalysisOptions) -> Result<Analyzer, LangError> {
        let program = parse(source)?;
        Analyzer::from_program(program, opts)
    }

    /// [`Analyzer::from_source`] attached to a [`SharedQueryCache`], so
    /// repeated queries across analyzer instances reuse warm per-path
    /// results.
    ///
    /// # Errors
    ///
    /// Propagates lexing, parsing and simple-type errors.
    pub fn from_source_with_cache(
        source: &str,
        opts: AnalysisOptions,
        cache: &SharedQueryCache,
    ) -> Result<Analyzer, LangError> {
        Analyzer::from_source_with(source, opts, cache, WorkerPool::global())
    }

    /// [`Analyzer::from_source_with_cache`] on an explicit persistent
    /// [`WorkerPool`] — share one pool (and one cache) across many
    /// analyzers to keep workers hot between queries and requests.
    ///
    /// # Errors
    ///
    /// Propagates lexing, parsing and simple-type errors.
    pub fn from_source_with(
        source: &str,
        opts: AnalysisOptions,
        cache: &SharedQueryCache,
        pool: &WorkerPool,
    ) -> Result<Analyzer, LangError> {
        let program = parse(source)?;
        Analyzer::from_program_with(program, opts, cache, pool)
    }

    /// Analysis of an already-parsed program.
    ///
    /// # Errors
    ///
    /// Propagates simple-type errors.
    pub fn from_program(program: Program, opts: AnalysisOptions) -> Result<Analyzer, LangError> {
        Analyzer::from_program_with_cache(program, opts, &SharedQueryCache::new())
    }

    /// [`Analyzer::from_program`] attached to a [`SharedQueryCache`].
    ///
    /// # Errors
    ///
    /// Propagates simple-type errors.
    pub fn from_program_with_cache(
        program: Program,
        opts: AnalysisOptions,
        cache: &SharedQueryCache,
    ) -> Result<Analyzer, LangError> {
        Analyzer::from_program_with(program, opts, cache, WorkerPool::global())
    }

    /// [`Analyzer::from_program_with_cache`] on an explicit persistent
    /// [`WorkerPool`].
    ///
    /// Symbolic execution submits its frontier forks to the pool at the
    /// width resolved from `opts.threads` (the path set is identical for
    /// every setting; see `gubpi_symbolic`'s docs).
    ///
    /// # Errors
    ///
    /// Propagates simple-type errors.
    pub fn from_program_with(
        program: Program,
        opts: AnalysisOptions,
        cache: &SharedQueryCache,
        pool: &WorkerPool,
    ) -> Result<Analyzer, LangError> {
        Analyzer::from_program_cancellable(program, opts, cache, pool, None)
    }

    /// [`Analyzer::from_program_with`] under a cooperative cancellation
    /// token: the symbolic executor polls the token at deterministic
    /// checkpoints and, on expiry, closes every in-flight branch as a
    /// sound ⊤ path. The resulting analyzer is fully usable — its
    /// bounds are merely coarser — and reports
    /// [`Analyzer::exec_cancelled`] so queries carry a `degraded`
    /// marker.
    ///
    /// # Errors
    ///
    /// Propagates simple-type errors.
    pub fn from_program_cancellable(
        program: Program,
        opts: AnalysisOptions,
        cache: &SharedQueryCache,
        pool: &WorkerPool,
        cancel: Option<&CancelToken>,
    ) -> Result<Analyzer, LangError> {
        let simple = infer(&program)?;
        let typing = infer_interval_types(&program, &simple);
        let facts = ProgramFacts::compute(&program, &typing);
        let mut sym = opts.sym;
        sym.frontier_workers = opts.threads.worker_count(usize::MAX);
        let exec_facts = if opts.prune { Some(&facts) } else { None };
        // Tail facts flow in unconditionally: attaching an enclosure to
        // a ⊤ path never changes the path set (it is data on the path,
        // consumed only behind `PathBoundOptions::use_tail`), so both
        // `--no-prune` and `--no-tail` bit-identity are preserved.
        let (paths, exec_report) = symbolic_paths_report_cancellable(
            &program,
            &typing,
            exec_facts,
            Some(&facts),
            sym,
            pool,
            cancel,
        );
        let exec_cancelled = cancel.is_some_and(CancelToken::is_cancelled);
        // The kernel seed is threaded regardless of `prune`: seeding
        // only renumbers constant slots and reorders ∃-tests, both
        // value-transparent (see `gubpi_symbolic::KernelSeed`).
        let seed = KernelSeed::from_facts(&facts);
        let fingerprints = paths.iter().map(SymPath::fingerprint).collect();
        Ok(Analyzer {
            program,
            simple,
            typing,
            facts,
            exec_report,
            exec_cancelled,
            seed,
            paths,
            fingerprints,
            cache: cache.clone(),
            pool: pool.clone(),
            opts,
        })
    }

    /// Whether a cancellation token fired during this analyzer's
    /// symbolic execution (see
    /// [`Analyzer::from_program_cancellable`]); the path set is then a
    /// sound coarsening and every query reports `degraded`.
    pub fn exec_cancelled(&self) -> bool {
        self.exec_cancelled
    }

    /// The memo cache this analyzer reads and fills; hand the clone to
    /// [`Analyzer::from_source_with_cache`] to share warm entries.
    pub fn shared_cache(&self) -> SharedQueryCache {
        self.cache.clone()
    }

    /// The persistent worker pool this analyzer schedules on; hand it to
    /// [`Analyzer::from_source_with`] to share warm workers.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The analysed program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The simple types.
    pub fn simple_types(&self) -> &TypeMap {
        &self.simple
    }

    /// The weight-aware interval typing.
    pub fn interval_typing(&self) -> &IntervalTyping {
        &self.typing
    }

    /// The symbolic interval paths found by Algorithm 1's exploration.
    pub fn paths(&self) -> &[SymPath] {
        &self.paths
    }

    /// The pre-execution static facts (per-subterm intervals, weight
    /// bounds, branch reachability, contraction estimates).
    pub fn facts(&self) -> &ProgramFacts {
        &self.facts
    }

    /// The symbolic executor's pruning / ⊤-truncation census for this
    /// program: skipped dead branches, zero-score drops, and how many
    /// paths are budget-truncated ⊤ paths.
    pub fn exec_report(&self) -> ExecReport {
        self.exec_report
    }

    /// Program lints derived from the static facts (zero-weight
    /// observations, out-of-domain parameters, unreachable branches,
    /// unused samples, truncation-prone recursions), sorted by source
    /// location.
    pub fn lints(&self) -> Vec<Lint> {
        lint_program(&self.program, &self.typing, &self.facts)
    }

    /// How many paths the linear semantics (§6.4) applies to.
    pub fn linear_path_count(&self) -> usize {
        self.paths.iter().filter(|p| linear_applicable(p)).count()
    }

    /// Counters of the per-path query memo cache so far. With a shared
    /// cache they aggregate over every attached analyzer (each per-path
    /// lookup is counted exactly once).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every memoised per-path result (used by benchmarks to time
    /// cold queries; results are unaffected because bounding is pure).
    /// With a shared cache this clears it for every attached analyzer.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Guaranteed bounds on the **unnormalised** denotation `⟦P⟧(U)`
    /// (Corollary 6.3).
    pub fn denotation_bounds(&self, u: Interval) -> (f64, f64) {
        self.denotation_bounds_with(u, self.opts.bounds)
    }

    /// [`Analyzer::denotation_bounds`] under explicit per-path bounding
    /// options (the memo cache keys on them, so mixing configurations on
    /// one analyzer is safe).
    pub fn denotation_bounds_with(&self, u: Interval, bounds: PathBoundOptions) -> (f64, f64) {
        self.denotation_outcome_with(u, bounds, None).bounds()
    }

    /// [`Analyzer::denotation_bounds`] as a deadline-aware
    /// [`QueryOutcome`].
    ///
    /// With `cancel: None` (or a token that never fires) the bounds are
    /// bit-identical to [`Analyzer::denotation_bounds`]. When the token
    /// fires mid-query, every region chunk already swept keeps its
    /// refined contribution and every path with unswept regions falls
    /// back to a sound coarse enclosure (the refiner settles its
    /// current leaf set; an interrupted uniform sweep keeps its prefix
    /// lower bound under the whole-box upper bound) — the outcome is
    /// marked `degraded` with the fraction of planned work completed,
    /// and is **never** cached.
    pub fn denotation_outcome(&self, u: Interval, cancel: Option<&CancelToken>) -> QueryOutcome {
        self.denotation_outcome_with(u, self.opts.bounds, cancel)
    }

    /// [`Analyzer::denotation_outcome`] under explicit per-path
    /// bounding options.
    pub fn denotation_outcome_with(
        &self,
        u: Interval,
        bounds: PathBoundOptions,
        cancel: Option<&CancelToken>,
    ) -> QueryOutcome {
        let method = self.opts.method;
        let refine = RefineOptions {
            refine: self.opts.refine,
            gap_target: self.opts.gap_target,
            max_refine_depth: self.opts.max_refine_depth,
        };
        let refine_key: RefineKey = (
            refine.refine,
            refine.gap_target.to_bits(),
            refine.max_refine_depth,
        );
        let key = |i: usize| -> QueryKey {
            (
                self.fingerprints[i],
                u.lo().to_bits(),
                u.hi().to_bits(),
                bounds,
                method,
                refine_key,
            )
        };
        // Which paths are grid-destined and therefore candidates for
        // adaptive refinement? (Linear paths under `Auto` keep the
        // polytope semantics; sampleless paths have nothing to split.
        // Tail substitution only rewrites a score constant, so it
        // cannot change this classification.)
        let refinable: Vec<bool> = self
            .paths
            .iter()
            .map(|p| {
                refine.refine
                    && p.n_samples > 0
                    && match method {
                        Method::Auto => !linear_applicable(p),
                        Method::Grid => true,
                    }
            })
            .collect();
        // Under a positive gap target a refined path's bounds depend on
        // the whole query's worklist (refinement stops when the *summed*
        // gap hits the target), so those results are not pure per-path
        // values: they bypass the memo cache entirely.
        let bypass = |i: usize| refine.gap_target > 0.0 && refinable[i];
        // One lock for the whole lookup pass: cached results are read
        // out before dispatch, so workers never contend on the cache.
        // Fingerprint hits are verified by structural path equality
        // before reuse (the cache may be shared across analyzers), and
        // every hit refreshes the entry's coarse-LRU stamp.
        let cached: Vec<Option<(f64, f64)>> = {
            let mut map = self.cache.inner.map.lock().expect("cache poisoned");
            (0..self.paths.len())
                .map(|i| {
                    if bypass(i) {
                        return None;
                    }
                    let stamp = self.cache.tick();
                    map.buckets.get_mut(&key(i)).and_then(|bucket| {
                        bucket
                            .iter_mut()
                            .find(|e| same_path(&e.path, &self.paths[i]))
                            .map(|e| {
                                e.stamp = stamp;
                                e.bounds
                            })
                    })
                })
                .collect()
        };
        let misses: Vec<(usize, &SymPath)> = cached
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| (i, &self.paths[i]))
            .collect();
        let hits = (self.paths.len() - misses.len()) as u64;
        self.cache.inner.hits.fetch_add(hits, Ordering::Relaxed);
        self.cache
            .inner
            .misses
            .fetch_add(misses.len() as u64, Ordering::Relaxed);
        // Unified scheduling: every missing path becomes a region-sweep
        // plan and the pool works path- and region-grain *at once* —
        // workers that drain the shallow paths steal region chunks from
        // still-running dominant ones. The fold below replays every
        // contribution in (path, region) order, so the bounds are
        // bit-identical for every width and steal schedule.
        // Tail substitution happens at plan time, never on the stored
        // path set: the cache keys carry `bounds.use_tail`, so tailed
        // and bare results for the same path never collide, and the
        // cache entries keep the original (bare-⊤) paths.
        let tailed: Vec<Option<SymPath>> = misses
            .iter()
            .map(|&(_, p)| tail_substituted(p, &bounds))
            .collect();
        // Partition the misses: grid-destined paths become per-path
        // adaptive refiners (falling back to the uniform sweep when the
        // grid is too coarse to subdivide); everything else keeps its
        // one-shot plan. Both batches run on the same pool with the
        // same deterministic (path, region)-order replay.
        let mut jobs: Vec<PathJob<'_, Region>> = Vec::with_capacity(misses.len());
        let mut folds: Vec<QueryFold> = Vec::with_capacity(misses.len());
        let mut uniform_at: Vec<usize> = Vec::with_capacity(misses.len());
        let mut refiners: Vec<GridRefiner<'_>> = Vec::new();
        let mut refiner_at: Vec<usize> = Vec::new();
        for (mi, (&(i, p), t)) in misses.iter().zip(&tailed).enumerate() {
            let p = t.as_ref().unwrap_or(p);
            if refinable[i] {
                if let Some(r) =
                    GridRefiner::new(p, QueryFold::Filter(u), bounds, &refine, Some(&self.seed))
                {
                    refiners.push(r);
                    refiner_at.push(mi);
                    continue;
                }
            }
            let (job, fold) = match method {
                Method::Auto => plan_path_query_seeded(p, u, bounds, Some(&self.seed)),
                Method::Grid => (
                    plan_path_grid_only_seeded(p, bounds, Some(&self.seed)),
                    QueryFold::Filter(u),
                ),
            };
            jobs.push(job);
            folds.push(fold);
            uniform_at.push(mi);
        }
        let width = self.opts.threads.worker_count(usize::MAX);
        let mut computed: Vec<(f64, f64)> = vec![(0.0, 0.0); misses.len()];
        // Per-miss completion ledger for the anytime contract: only
        // fully-swept results are cacheable, and the planned/done cell
        // counts yield the outcome's completeness fraction.
        let mut complete: Vec<bool> = vec![true; misses.len()];
        let mut planned_units = 0.0f64;
        let mut done_units = 0.0f64;
        let progress: Option<Vec<SweepProgress>> = match cancel {
            None => {
                run_jobs_with(&self.pool, width, jobs, |j, region| {
                    folds[j].apply(&mut computed[uniform_at[j]], region)
                });
                None
            }
            Some(token) => Some(run_jobs_cancellable(
                &self.pool,
                width,
                jobs,
                token,
                |j, region| folds[j].apply(&mut computed[uniform_at[j]], region),
            )),
        };
        if let Some(progress) = &progress {
            for (j, prog) in progress.iter().enumerate() {
                let mi = uniform_at[j];
                planned_units += prog.total as f64;
                done_units += prog.done as f64;
                if !prog.complete() {
                    // The folded prefix's lower bound stays valid (the
                    // unswept cells only add non-negative mass); its
                    // upper bound does not — replace it with the
                    // whole-box enclosure, which contains the full
                    // path contribution by inclusion monotonicity.
                    complete[mi] = false;
                    let path = tailed[mi].as_ref().unwrap_or(misses[mi].1);
                    let mut coarse = (0.0, 0.0);
                    if let Some(region) = coarse_path_enclosure(path) {
                        folds[j].apply(&mut coarse, region);
                    }
                    computed[mi] = (computed[mi].0.max(coarse.0), coarse.1);
                }
            }
        }
        if !refiners.is_empty() {
            let refined = match cancel {
                None => {
                    run_adaptive_refinement(&self.pool, width, &mut refiners, refine.gap_target)
                }
                Some(token) => run_adaptive_refinement_cancellable(
                    &self.pool,
                    width,
                    &mut refiners,
                    refine.gap_target,
                    token,
                ),
            };
            for ((&mi, b), r) in refiner_at.iter().zip(refined).zip(&refiners) {
                computed[mi] = b;
                planned_units += r.cell_budget() as f64;
                if r.interrupted() {
                    complete[mi] = false;
                    done_units += r.cells_used().min(r.cell_budget()) as f64;
                } else {
                    // Early stops (gap target, exhausted worklist) are
                    // full-precision results: the refiner finished all
                    // the work it would ever schedule.
                    done_units += r.cell_budget() as f64;
                }
            }
        }
        if !misses.is_empty() {
            let mut map = self.cache.inner.map.lock().expect("cache poisoned");
            for (mi, (&(i, _), &v)) in misses.iter().zip(&computed).enumerate() {
                // Degraded per-path results never enter the cache: an
                // undisturbed re-query must recompute the path at full
                // precision, not inherit a deadline's coarse enclosure.
                if bypass(i) || !complete[mi] {
                    continue;
                }
                let stamp = self.cache.tick();
                let bucket = map.buckets.entry(key(i)).or_default();
                // A racing analyzer may have inserted the same path
                // meanwhile; bounding is pure, so skipping the duplicate
                // loses nothing.
                if !bucket.iter().any(|e| same_path(&e.path, &self.paths[i])) {
                    bucket.push(CacheEntry {
                        path: self.paths[i].clone(),
                        bounds: v,
                        stamp,
                    });
                    map.entries += 1;
                }
            }
            self.cache.enforce_cap(&mut map);
        }
        let mut per_path = cached;
        for (&(i, _), &v) in misses.iter().zip(&computed) {
            per_path[i] = Some(v);
        }
        // Deterministic reduce: sum the per-path bounds in path order, so
        // the float summation order is independent of the thread count.
        let mut lo = 0.0;
        let mut hi = 0.0;
        for r in per_path {
            let (l, h) = r.expect("every path is cached or computed");
            lo += l;
            hi += h;
        }
        let degraded = self.exec_cancelled || complete.iter().any(|c| !c);
        let completeness = if self.exec_cancelled {
            // Path discovery itself was truncated; the cell-level ratio
            // would overstate how much of the intended work ran.
            0.0
        } else if planned_units > 0.0 {
            (done_units / planned_units).clamp(0.0, 1.0)
        } else {
            1.0
        };
        QueryOutcome {
            lo,
            hi,
            degraded,
            completeness,
        }
    }

    /// Bounds on the normalising constant `Z = ⟦P⟧(R)`.
    pub fn normalizing_constant(&self) -> (f64, f64) {
        self.denotation_bounds(Interval::REAL)
    }

    /// Guaranteed bounds on the **normalised** posterior probability
    /// `posterior_P(U) = ⟦P⟧(U) / Z`.
    ///
    /// Uses the tight two-query normalisation: with `m = ⟦P⟧(U)` and
    /// `r = ⟦P⟧(R∖U)`, `posterior = m/(m+r)` is monotone in both.
    pub fn posterior_probability(&self, u: Interval) -> (f64, f64) {
        self.posterior_outcome(u, None).bounds()
    }

    /// [`Analyzer::posterior_probability`] as a deadline-aware
    /// [`QueryOutcome`]: all five denotation sub-queries share the one
    /// token, the outcome is degraded if any sub-query was, and its
    /// completeness is the minimum across them. The normalisation
    /// `m/(m+r)` is monotone in both arguments, so feeding it sound
    /// (merely coarser) sub-query bounds yields sound posterior bounds.
    pub fn posterior_outcome(&self, u: Interval, cancel: Option<&CancelToken>) -> QueryOutcome {
        let m = self.denotation_outcome(u, cancel);
        let (m_lo, m_hi) = m.bounds();
        // Complement mass via two ray queries. For the lower bound the
        // rays are shrunk by one ulp so they are strictly disjoint from U
        // (closed intervals would otherwise double-count boundary atoms);
        // the closed rays over-cover the complement for the upper bound,
        // which is sound.
        let left_closed = Interval::new(f64::NEG_INFINITY, u.lo());
        let right_closed = Interval::new(u.hi(), f64::INFINITY);
        let left_open = Interval::new(f64::NEG_INFINITY, gubpi_interval::next_after_down(u.lo()));
        let right_open = Interval::new(gubpi_interval::next_after_up(u.hi()), f64::INFINITY);
        let qll = self.denotation_outcome(left_open, cancel);
        let qrl = self.denotation_outcome(right_open, cancel);
        let qlh = self.denotation_outcome(left_closed, cancel);
        let qrh = self.denotation_outcome(right_closed, cancel);
        let (ll, rl, lh, rh) = (qll.lo, qrl.lo, qlh.hi, qrh.hi);
        let (r_lo, r_hi) = (ll + rl, lh + rh);
        let lo = if m_lo <= 0.0 {
            0.0
        } else {
            m_lo / (m_lo + r_hi)
        };
        let hi = if m_hi <= 0.0 {
            0.0
        } else if r_lo <= 0.0 {
            1.0
        } else {
            (m_hi / (m_hi + r_lo)).min(1.0)
        };
        let subs = [&m, &qll, &qrl, &qlh, &qrh];
        QueryOutcome {
            lo,
            hi,
            degraded: subs.iter().any(|q| q.degraded),
            completeness: subs.iter().map(|q| q.completeness).fold(1.0f64, f64::min),
        }
    }

    /// Histogram bounds over `domain` with `bins` bins, on the
    /// unnormalised denotation; call
    /// [`HistogramBounds::normalized`] for posterior bounds.
    ///
    /// One pass over all regions; regions whose value range straddles a
    /// bin edge contribute their upper mass to both neighbours (sound,
    /// slightly conservative). Use [`Analyzer::histogram_exact`] for
    /// per-bin query precision.
    ///
    /// Every path is a region-sweep plan on the pool (same unified
    /// scheduling and stealing as the queries); contributions land in
    /// per-path partial histograms in region order, merged in path
    /// order — the same determinism guarantee as the queries.
    pub fn histogram(&self, domain: Interval, bins: usize) -> HistogramBounds {
        let method = self.opts.method;
        let bounds = self.opts.bounds;
        // Same tail substitution as the queries (see
        // `denotation_bounds_with`): ⊤ paths with a geometric enclosure
        // sweep with the tightened trailing score.
        let tailed: Vec<Option<SymPath>> = self
            .paths
            .iter()
            .map(|p| tail_substituted(p, &bounds))
            .collect();
        let jobs: Vec<PathJob<'_, Region>> = self
            .paths
            .iter()
            .zip(&tailed)
            .map(|(p, t)| {
                let p = t.as_ref().unwrap_or(p);
                match method {
                    Method::Auto => plan_path_seeded(p, bounds, Some(&self.seed)),
                    Method::Grid => plan_path_grid_only_seeded(p, bounds, Some(&self.seed)),
                }
            })
            .collect();
        let mut partials: Vec<HistogramBounds> = self
            .paths
            .iter()
            .map(|_| HistogramBounds::new(domain, bins))
            .collect();
        run_jobs_with(
            &self.pool,
            self.opts.threads.worker_count(usize::MAX),
            jobs,
            |i, (v, lo, hi)| partials[i].add(v, lo, hi),
        );
        let mut h = HistogramBounds::new(domain, bins);
        for part in &partials {
            h.merge_from(part);
        }
        h
    }

    /// Histogram bounds computed as one exact query per bin (plus the two
    /// tails) — tighter than [`Analyzer::histogram`] at `bins + 2` times
    /// the cost.
    pub fn histogram_exact(&self, domain: Interval, bins: usize) -> HistogramBounds {
        let mut h = HistogramBounds::new(domain, bins);
        for i in 0..bins {
            let (lo, hi) = self.denotation_bounds(h.bin(i));
            h.set_bin(i, lo, hi);
        }
        h.left_tail = self.denotation_bounds(Interval::new(f64::NEG_INFINITY, domain.lo()));
        h.right_tail = self.denotation_bounds(Interval::new(domain.hi(), f64::INFINITY));
        h
    }

    // ----------------------------------------------------------------
    // Validated query API: raw endpoints in, typed errors out
    // ----------------------------------------------------------------

    /// [`Analyzer::denotation_bounds`] on raw endpoints, validating them
    /// instead of panicking deep inside the analysis.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidInterval`] when an endpoint is `NaN` or
    /// `lo > hi`.
    pub fn try_denotation_bounds(&self, lo: f64, hi: f64) -> Result<(f64, f64), QueryError> {
        Ok(self.denotation_bounds(valid_interval(lo, hi)?))
    }

    /// [`Analyzer::posterior_probability`] on raw endpoints.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidInterval`] when an endpoint is `NaN` or
    /// `lo > hi`.
    pub fn try_posterior_probability(&self, lo: f64, hi: f64) -> Result<(f64, f64), QueryError> {
        Ok(self.posterior_probability(valid_interval(lo, hi)?))
    }

    /// [`Analyzer::denotation_outcome`] on raw endpoints under an
    /// optional cancellation token.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidInterval`] for `NaN`/inverted endpoints;
    /// [`QueryError::DeadlineExceeded`] when the token had already
    /// fired before any bounding work could start **and** no sound
    /// degraded result exists (an expired token still yields a
    /// degraded whole-box outcome, so this only triggers for a token
    /// cancelled before validation).
    pub fn try_denotation_outcome(
        &self,
        lo: f64,
        hi: f64,
        cancel: Option<&CancelToken>,
    ) -> Result<QueryOutcome, QueryError> {
        let u = valid_interval(lo, hi)?;
        Ok(self.denotation_outcome(u, cancel))
    }

    /// [`Analyzer::posterior_outcome`] on raw endpoints under an
    /// optional cancellation token.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidInterval`] for `NaN`/inverted endpoints.
    pub fn try_posterior_outcome(
        &self,
        lo: f64,
        hi: f64,
        cancel: Option<&CancelToken>,
    ) -> Result<QueryOutcome, QueryError> {
        let u = valid_interval(lo, hi)?;
        Ok(self.posterior_outcome(u, cancel))
    }

    /// [`Analyzer::histogram`] on raw domain edges, validating the
    /// domain (bounded, positive width) and bin count.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidInterval`] for `NaN`/inverted endpoints,
    /// [`QueryError::InvalidDomain`] for unbounded or zero-width
    /// domains, [`QueryError::NoBins`] for `bins == 0`.
    pub fn try_histogram(
        &self,
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> Result<HistogramBounds, QueryError> {
        Ok(self.histogram(valid_domain(lo, hi, bins)?, bins))
    }

    /// [`Analyzer::histogram_exact`] on raw domain edges; same
    /// validation as [`Analyzer::try_histogram`].
    ///
    /// # Errors
    ///
    /// See [`Analyzer::try_histogram`].
    pub fn try_histogram_exact(
        &self,
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> Result<HistogramBounds, QueryError> {
        Ok(self.histogram_exact(valid_domain(lo, hi, bins)?, bins))
    }
}

/// Validates raw histogram parameters.
fn valid_domain(lo: f64, hi: f64, bins: usize) -> Result<Interval, QueryError> {
    let domain = valid_interval(lo, hi)?;
    if !domain.is_finite() || domain.width() <= 0.0 {
        return Err(QueryError::InvalidDomain { lo, hi });
    }
    if bins == 0 {
        return Err(QueryError::NoBins);
    }
    Ok(domain)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzer(src: &str) -> Analyzer {
        Analyzer::from_source(src, AnalysisOptions::default()).unwrap()
    }

    #[test]
    fn uniform_posterior_probability() {
        let a = analyzer("sample");
        let (lo, hi) = a.posterior_probability(Interval::new(0.25, 0.75));
        assert!(lo <= 0.5 && 0.5 <= hi);
        assert!(hi - lo < 1e-6, "[{lo}, {hi}]");
    }

    #[test]
    fn scoring_changes_posterior() {
        // score(x): posterior density 2x; P(X > 0.5) = 3/4.
        let a = analyzer("let x = sample in score(x); x");
        let (lo, hi) = a.posterior_probability(Interval::new(0.5, 1.0));
        assert!(lo <= 0.75 && 0.75 <= hi, "[{lo}, {hi}]");
        assert!(hi - lo < 0.1, "[{lo}, {hi}]");
    }

    #[test]
    fn histogram_brackets_uniform() {
        let a = analyzer("sample");
        let h = a.histogram(Interval::new(0.0, 1.0), 4);
        for i in 0..4 {
            let (lo, hi) = h.unnormalized(i);
            assert!(
                lo <= 0.25 + 1e-9 && 0.25 <= hi + 1e-9,
                "bin {i}: [{lo}, {hi}]"
            );
        }
        let n = h.normalized();
        for nb in n {
            assert!(nb.lo <= 0.25 + 1e-9 && 0.25 <= nb.hi + 1e-9);
        }
    }

    #[test]
    fn grid_method_is_sound_but_looser() {
        let src = "let x = sample in score(x); x";
        let auto = analyzer(src);
        let grid = Analyzer::from_source(
            src,
            AnalysisOptions {
                method: Method::Grid,
                ..Default::default()
            },
        )
        .unwrap();
        let (al, ah) = auto.denotation_bounds(Interval::UNIT);
        let (gl, gh) = grid.denotation_bounds(Interval::UNIT);
        assert!(gl <= 0.5 && 0.5 <= gh);
        assert!(al <= 0.5 && 0.5 <= ah);
        assert!(ah - al <= gh - gl + 1e-9, "linear at least as tight");
    }

    #[test]
    fn recursive_program_gets_finite_bounds() {
        // Geometric recursion: ⟦P⟧(R) = Σ (1/2)^{k+1} = 1.
        let src = "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0";
        let a = Analyzer::from_source(
            src,
            AnalysisOptions {
                sym: SymExecOptions {
                    max_fix_unfoldings: 8,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let (z_lo, z_hi) = a.normalizing_constant();
        assert!(z_lo > 0.9, "explored mass ≥ 1 − 2⁻⁸, got {z_lo}");
        assert!(z_hi >= 1.0 - 1e-9);
        // P(result = 0) = 1/2 exactly; bin [−0.25, 0.25] captures it.
        let (lo, hi) = a.denotation_bounds(Interval::new(-0.25, 0.25));
        assert!(lo <= 0.5 + 1e-9 && 0.5 <= hi + 1e-9, "[{lo}, {hi}]");
    }

    #[test]
    fn linear_paths_are_detected() {
        let a = analyzer("if sample + sample <= 1 then sample else 1 - sample");
        assert_eq!(a.linear_path_count(), a.paths().len());
        assert!(a.paths().len() >= 2);
    }

    #[test]
    fn constant_invalid_dist_params_have_zero_mass() {
        // Every concrete run scores density 0 (σ = −0.5 is out of
        // domain), so the true denotation is 0 — and the *guaranteed*
        // bounds must say so. Regression: the interval lifting used to
        // clamp σ into validity, reporting a huge positive lower bound.
        let a = analyzer("observe 0 from normal(0, 0 - 0.5); sample");
        let (z_lo, z_hi) = a.normalizing_constant();
        assert_eq!((z_lo, z_hi), (0.0, 0.0), "Z must be exactly 0");
    }

    #[test]
    fn runtime_invalid_dist_params_keep_bounds_sound() {
        // σ = sample − 0.5: invalid (zero density) for sample ≤ 0.5.
        // True Z = ∫_{0.5}^{1} pdf_{N(0, s−0.5)}(0.4) ds ≈ 0.171213
        // (numerical quadrature).
        let mut opts = AnalysisOptions::default();
        opts.bounds.splits = 64;
        let a = Analyzer::from_source("observe 0.4 from normal(0, sample - 0.5); sample", opts)
            .unwrap();
        let (z_lo, z_hi) = a.normalizing_constant();
        let truth = 0.171_213;
        assert!(
            z_lo <= truth && truth <= z_hi,
            "Z = {truth} outside [{z_lo}, {z_hi}]"
        );
        assert!(z_hi.is_finite());
    }

    #[test]
    fn repeated_queries_hit_the_memo_cache() {
        let a = analyzer("if sample <= 0.5 then sample else 1 - sample");
        let n_paths = a.paths().len() as u64;
        assert_eq!(a.cache_stats().hit_miss(), (0, 0));
        let first = a.denotation_bounds(Interval::new(0.0, 0.5));
        assert_eq!(a.cache_stats().hit_miss(), (0, n_paths));
        let second = a.denotation_bounds(Interval::new(0.0, 0.5));
        assert_eq!(a.cache_stats().hit_miss(), (n_paths, n_paths));
        assert_eq!(first, second, "cache must return bit-identical bounds");
        // A different query misses again.
        let _ = a.denotation_bounds(Interval::new(0.25, 0.75));
        let s = a.cache_stats();
        assert_eq!(s.hits, n_paths);
        assert_eq!(s.misses, 2 * n_paths);
        assert_eq!(s.evictions, 0, "unbounded caches never evict");
    }

    #[test]
    fn cache_keys_on_path_bound_options() {
        let a = analyzer("let x = sample in score(x); x");
        let u = Interval::new(0.0, 0.5);
        let coarse = PathBoundOptions {
            splits: 4,
            ..Default::default()
        };
        let fine = PathBoundOptions {
            splits: 64,
            ..Default::default()
        };
        let c1 = a.denotation_bounds_with(u, coarse);
        let f1 = a.denotation_bounds_with(u, fine);
        // Different options must not alias: the fine query recomputes
        // rather than reusing the coarse result.
        assert!(f1.1 - f1.0 < c1.1 - c1.0, "fine {f1:?} vs coarse {c1:?}");
        let s = a.cache_stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 2 * a.paths().len() as u64);
        // Re-asking each configuration hits its own entry.
        assert_eq!(a.denotation_bounds_with(u, coarse), c1);
        assert_eq!(a.denotation_bounds_with(u, fine), f1);
        assert_eq!(a.cache_stats().hits, 2 * a.paths().len() as u64);
    }

    #[test]
    fn bounded_cache_evicts_oldest_entries_and_stays_correct() {
        // 2 paths per query; a cap of 4 holds exactly two queries' worth
        // of entries. Warm more than that, check the cap holds, evictions
        // are counted, and a re-query of an evicted interval recomputes
        // bit-identical bounds.
        let src = "if sample <= 0.5 then sample else 1 - sample";
        let queries: Vec<Interval> = (0..5)
            .map(|i| Interval::new(0.0, 0.1 + 0.1 * i as f64))
            .collect();
        let unbounded = Analyzer::from_source(src, AnalysisOptions::default()).unwrap();
        let reference: Vec<(f64, f64)> = queries
            .iter()
            .map(|&u| unbounded.denotation_bounds(u))
            .collect();

        let cache = SharedQueryCache::with_capacity(4);
        assert_eq!(cache.capacity(), Some(4));
        let a = Analyzer::from_source_with_cache(src, AnalysisOptions::default(), &cache).unwrap();
        let n_paths = a.paths().len();
        assert_eq!(n_paths, 2);
        for (&u, &r) in queries.iter().zip(&reference) {
            assert_eq!(a.denotation_bounds(u), r);
            assert!(
                cache.entry_count() <= 4,
                "cap violated: {} entries",
                cache.entry_count()
            );
        }
        let s = cache.stats();
        assert_eq!(s.misses, 10, "5 queries × 2 paths all missed");
        assert_eq!(
            s.evictions,
            (queries.len() * n_paths - 4) as u64,
            "everything beyond the cap was evicted exactly once"
        );
        // The two most recent queries are still resident (LRU kept the
        // newest stamps) ...
        let before = cache.stats();
        assert_eq!(a.denotation_bounds(queries[4]), reference[4]);
        assert_eq!(cache.stats().hits, before.hits + 2);
        // ... and an evicted query recomputes, bit-identical.
        let before = cache.stats();
        assert_eq!(a.denotation_bounds(queries[0]), reference[0]);
        let after = cache.stats();
        assert_eq!(after.misses, before.misses + 2, "evicted ⇒ recompute");
        assert!(cache.entry_count() <= 4);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_caches_are_rejected() {
        let _ = SharedQueryCache::with_capacity(0);
    }

    #[test]
    fn lru_refresh_protects_hot_entries() {
        // Cap 2, one path per query. Warm A, B (cache full: A older than
        // B), touch A (refresh), insert C ⇒ B must be the victim.
        let src = "sample";
        let cache = SharedQueryCache::with_capacity(2);
        let a = Analyzer::from_source_with_cache(src, AnalysisOptions::default(), &cache).unwrap();
        assert_eq!(a.paths().len(), 1);
        let qa = Interval::new(0.0, 0.25);
        let qb = Interval::new(0.0, 0.5);
        let qc = Interval::new(0.0, 0.75);
        let _ = a.denotation_bounds(qa);
        let _ = a.denotation_bounds(qb);
        let _ = a.denotation_bounds(qa); // refresh A
        let _ = a.denotation_bounds(qc); // evicts B, the oldest stamp
        let before = cache.stats();
        let _ = a.denotation_bounds(qa);
        assert_eq!(cache.stats().hits, before.hits + 1, "A survived");
        let before = cache.stats();
        let _ = a.denotation_bounds(qb);
        assert_eq!(cache.stats().misses, before.misses + 1, "B was evicted");
    }

    #[test]
    fn invalid_query_endpoints_yield_typed_errors() {
        let a = analyzer("sample");
        assert_eq!(
            a.try_denotation_bounds(1.0, 0.0),
            Err(QueryError::InvalidInterval { lo: 1.0, hi: 0.0 })
        );
        assert!(matches!(
            a.try_denotation_bounds(f64::NAN, 1.0),
            Err(QueryError::InvalidInterval { .. })
        ));
        assert!(matches!(
            a.try_posterior_probability(0.5, f64::NAN),
            Err(QueryError::InvalidInterval { .. })
        ));
        assert!(matches!(
            a.try_histogram(0.0, f64::INFINITY, 4),
            Err(QueryError::InvalidDomain { .. })
        ));
        assert!(matches!(
            a.try_histogram(0.5, 0.5, 4),
            Err(QueryError::InvalidDomain { .. })
        ));
        assert_eq!(a.try_histogram(0.0, 1.0, 0).err(), Some(QueryError::NoBins));
        assert!(matches!(
            a.try_histogram_exact(2.0, 1.0, 4),
            Err(QueryError::InvalidInterval { .. })
        ));
    }

    #[test]
    fn valid_raw_endpoints_match_the_interval_api() {
        let a = analyzer("let x = sample in score(x); x");
        let u = Interval::new(0.25, 0.75);
        assert_eq!(
            a.try_denotation_bounds(0.25, 0.75),
            Ok(a.denotation_bounds(u))
        );
        assert_eq!(
            a.try_posterior_probability(0.25, 0.75),
            Ok(a.posterior_probability(u))
        );
        let h = a.try_histogram(0.0, 1.0, 4).unwrap();
        let href = a.histogram(Interval::new(0.0, 1.0), 4);
        for i in 0..4 {
            assert_eq!(h.unnormalized(i), href.unnormalized(i));
        }
    }

    #[test]
    fn pruned_and_unpruned_bounds_are_bit_identical() {
        // Models with genuinely dead branches (`else fail` conditioning):
        // pruning must cut the path count and change no bound bit.
        let srcs = [
            "let x = sample in if x <= 0.7 then x else fail",
            "let rec walk x =
               if x <= 0 then 0 else
                 if sample <= 0.8 then walk (x - sample) else fail
             in walk 1",
        ];
        for src in srcs {
            let pruned = analyzer(src);
            let unpruned = Analyzer::from_source(
                src,
                AnalysisOptions {
                    prune: false,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(
                pruned.paths().len() < unpruned.paths().len(),
                "{src}: pruning must drop paths ({} vs {})",
                pruned.paths().len(),
                unpruned.paths().len()
            );
            assert!(pruned.exec_report().pruned_branches > 0, "{src}");
            assert_eq!(unpruned.exec_report().pruned_branches, 0, "{src}");
            for u in [
                Interval::new(0.0, 0.25),
                Interval::new(0.25, 1.0),
                Interval::REAL,
            ] {
                let a = pruned.denotation_bounds(u);
                let b = unpruned.denotation_bounds(u);
                assert_eq!(a.0.to_bits(), b.0.to_bits(), "{src}: lo on {u:?}");
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "{src}: hi on {u:?}");
            }
            let (pl, ph) = pruned.posterior_probability(Interval::new(0.0, 0.5));
            let (ul, uh) = unpruned.posterior_probability(Interval::new(0.0, 0.5));
            assert_eq!((pl.to_bits(), ph.to_bits()), (ul.to_bits(), uh.to_bits()));
        }
    }

    #[test]
    fn tail_enclosures_tighten_top_paths_and_no_tail_keeps_bare_top() {
        // A budget too tight for `geo` produces ⊤ paths. With tail
        // substitution the upper bounds are finite; with
        // `use_tail: false` (the `--no-tail` escape hatch) they are the
        // historical +∞. Lower bounds are bit-identical either way: the
        // substitution only tightens the trailing [0, ∞] score's upper
        // end.
        let src = "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0";
        let mk = |use_tail: bool| {
            Analyzer::from_source(
                src,
                AnalysisOptions {
                    sym: SymExecOptions {
                        max_fix_unfoldings: 16,
                        max_paths: 6,
                        ..Default::default()
                    },
                    bounds: PathBoundOptions {
                        use_tail,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let on = mk(true);
        let off = mk(false);
        assert!(on.exec_report().budget_truncated_paths > 0);
        assert!(on.exec_report().tail_enclosed_paths > 0);
        for u in [
            Interval::REAL,
            Interval::new(-0.25, 0.25),
            Interval::new(0.5, 10.0),
        ] {
            let (lo_on, hi_on) = on.denotation_bounds(u);
            let (lo_off, hi_off) = off.denotation_bounds(u);
            assert_eq!(lo_on.to_bits(), lo_off.to_bits(), "lo on {u:?}");
            assert_eq!(hi_off, f64::INFINITY, "bare ⊤ forces +∞ on {u:?}");
            assert!(hi_on.is_finite(), "tail-enclosed hi on {u:?}");
        }
        // ⟦P⟧(R) = 1 exactly: the finite upper must still cover it.
        let (z_lo, z_hi) = on.normalizing_constant();
        assert!(z_lo <= 1.0 && 1.0 <= z_hi, "[{z_lo}, {z_hi}]");
        // Programs without ⊤ paths are untouched by the flag, bit for
        // bit — including through the histogram sweep.
        let exact = "if sample <= 0.3 then sample else 1 - sample";
        let a = analyzer(exact);
        assert_eq!(a.exec_report().tail_enclosed_paths, 0);
        let h_on = on.histogram(Interval::new(0.0, 4.0), 8);
        assert!(
            (0..h_on.bins()).all(|i| h_on.unnormalized(i).1.is_finite()),
            "tailed histogram bins stay finite"
        );
    }

    #[test]
    fn ranked_tails_give_data_guarded_loops_finite_upper_bounds() {
        // A data-guarded loop sits at per-step mass 1, where the plain
        // geometric series is unusable — PR 7 left its ⊤ paths at +∞.
        // The ranking certificate must now make the upper bound finite,
        // while `--no-tail` still reverts and lower bounds stay put.
        let src = "let rec walk x = if x <= 0 then 0 else walk (x - sample) in walk 1";
        let mk = |use_tail: bool| {
            Analyzer::from_source(
                src,
                AnalysisOptions {
                    sym: SymExecOptions {
                        max_fix_unfoldings: 16,
                        max_paths: 6,
                        ..Default::default()
                    },
                    bounds: PathBoundOptions {
                        use_tail,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let on = mk(true);
        let off = mk(false);
        let report = on.exec_report();
        assert!(report.budget_truncated_paths > 0, "need ⊤ paths");
        assert!(report.ranked_tail_paths > 0, "need ranked enclosures");
        assert_eq!(report.ranked_tail_paths, report.tail_enclosed_paths);
        let (lo_on, hi_on) = on.denotation_bounds(Interval::REAL);
        let (lo_off, hi_off) = off.denotation_bounds(Interval::REAL);
        assert_eq!(lo_on.to_bits(), lo_off.to_bits(), "lower bound untouched");
        assert_eq!(hi_off, f64::INFINITY, "bare ⊤ forces +∞");
        assert!(hi_on.is_finite(), "ranked tail must cap the upper bound");
        // The loop a.s. terminates with result 0 and weight 1, so
        // ⟦P⟧(R) = 1 must stay inside the bounds.
        assert!(lo_on <= 1.0 && 1.0 <= hi_on, "[{lo_on}, {hi_on}]");
    }

    #[test]
    fn facts_and_lints_are_exposed() {
        // A deliberate modelling mistake: uniform(1, 0) has an inverted
        // support, and the `if 2 <= 1` branch is unreachable.
        let a = analyzer("if 2 <= 1 then sample else observe sample from uniform(1, 0); sample");
        assert!(a.facts().was_evaluated(a.program().root.id));
        let lints = a.lints();
        assert!(!lints.is_empty(), "expected lints, got none");
        let kinds: Vec<&str> = lints.iter().map(|l| l.kind.name()).collect();
        assert!(kinds.contains(&"unreachable-branch"), "{kinds:?}");
        // Deliberately clean models stay lint-free.
        let clean = analyzer("let x = sample in score(x); x");
        assert!(clean.lints().is_empty(), "{:?}", clean.lints());
    }

    #[test]
    fn clear_cache_resets_counters_not_results() {
        let a = analyzer("sample");
        let u = Interval::new(0.1, 0.9);
        let r1 = a.denotation_bounds(u);
        a.clear_cache();
        assert_eq!(a.cache_stats(), CacheStats::default());
        let r2 = a.denotation_bounds(u);
        assert_eq!(r1, r2);
        let s = a.cache_stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, a.paths().len() as u64);
    }
}
