//! The analyzer facade (Algorithm 1).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gubpi_interval::Interval;
use gubpi_lang::{infer, parse, LangError, Program, TypeMap};
use gubpi_symbolic::{symbolic_paths, SymExecOptions, SymPath};
use gubpi_types::{infer_interval_types, IntervalTyping};

use crate::histogram::HistogramBounds;
use crate::parallel::{map_paths, Threads};
use crate::pathbounds::{
    bound_path_grid_only_threaded, bound_path_query_threaded, bound_path_threaded,
    linear_applicable, PathBoundOptions, SingleQuery,
};

/// Which per-path semantics to use.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Method {
    /// Linear semantics where applicable, grid otherwise (§6.4 + §6.3).
    #[default]
    Auto,
    /// Force the standard grid semantics (§6.3) for every path.
    Grid,
}

/// End-to-end analysis options.
#[derive(Copy, Clone, Debug, Default)]
pub struct AnalysisOptions {
    /// Symbolic execution (depth limit `D`, path caps).
    pub sym: SymExecOptions,
    /// Per-path bounding (splits, volume method).
    pub bounds: PathBoundOptions,
    /// Semantics selection.
    pub method: Method,
    /// Worker threads for per-path bounding. Bounds are bit-identical
    /// across every setting (see [`crate::parallel`]).
    pub threads: Threads,
}

/// `(path fingerprint, query lo bits, query hi bits, bounding options,
/// method)`. The fingerprint is a 64-bit structural hash, so every
/// cached result additionally stores the [`SymPath`] it was computed
/// for and lookups verify **structural equality** before reusing an
/// entry — a fingerprint collision costs one extra bucket entry, never
/// a wrong bound. The option values are keyed exactly (derived
/// `Eq`/`Hash`), so differing configurations can never alias — even
/// ones added to [`PathBoundOptions`] later.
type QueryKey = (u64, u64, u64, PathBoundOptions, Method);

/// One verified cache entry: the path the result belongs to, plus the
/// `(lo, hi)` bounds.
type CacheEntry = (SymPath, (f64, f64));

/// Memo cache for per-path query bounds, shared across worker threads
/// (and, via [`SharedQueryCache`], across `Analyzer` instances).
///
/// Per-path bounding is pure, so a hit returns exactly the value a
/// recomputation would — caching cannot perturb the determinism
/// guarantee.
#[derive(Default)]
struct QueryCache {
    map: Mutex<HashMap<QueryKey, Vec<CacheEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A handle to a per-path memo cache that can be shared across
/// [`Analyzer`] instances (the cheap `Clone` copies the handle, not the
/// cache).
///
/// Analyzing the same program — or programs sharing structurally equal
/// paths — under several analyzers (one per thread, one per request,
/// re-parsed from source, …) normally recomputes every path bound.
/// Constructing the analyzers with [`Analyzer::from_source_with_cache`]
/// instead lets later instances hit the warm entries:
///
/// ```
/// use gubpi_core::{AnalysisOptions, Analyzer, SharedQueryCache};
/// use gubpi_interval::Interval;
///
/// let cache = SharedQueryCache::new();
/// let opts = AnalysisOptions::default();
/// let a = Analyzer::from_source_with_cache("sample", opts, &cache).unwrap();
/// let b = Analyzer::from_source_with_cache("sample", opts, &cache).unwrap();
/// let u = Interval::new(0.0, 0.5);
/// let ra = a.denotation_bounds(u); // computes, fills the cache
/// let rb = b.denotation_bounds(u); // hits the shared entries
/// assert_eq!(ra, rb);
/// assert!(cache.stats().0 > 0, "second analyzer must hit");
/// ```
///
/// Entries are verified by structural path equality before reuse (see
/// [`QueryKey`]), so sharing is sound even across unrelated programs.
/// Hit/miss counters live in the shared cache: each per-path lookup is
/// counted exactly once, no matter which analyzer issued it.
#[derive(Clone, Default)]
pub struct SharedQueryCache {
    inner: Arc<QueryCache>,
}

impl SharedQueryCache {
    /// A fresh, empty cache.
    pub fn new() -> SharedQueryCache {
        SharedQueryCache::default()
    }

    /// `(hits, misses)` accumulated by every analyzer attached to this
    /// cache.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.inner.hits.load(Ordering::Relaxed),
            self.inner.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of memoised `(path, query, options)` results.
    pub fn entry_count(&self) -> usize {
        self.inner
            .map
            .lock()
            .expect("cache poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Drops every memoised result and resets the counters. Affects
    /// every analyzer sharing the cache; results are unaffected because
    /// bounding is pure.
    pub fn clear(&self) {
        self.inner.map.lock().expect("cache poisoned").clear();
        self.inner.hits.store(0, Ordering::Relaxed);
        self.inner.misses.store(0, Ordering::Relaxed);
    }
}

/// A query whose parameters cannot denote a valid measurable set, caught
/// at the [`Analyzer`] API boundary.
///
/// Raw endpoints arrive from CLIs, config files and remote requests;
/// without this validation a `NaN` or inverted pair would reach
/// `Interval::new` and panic deep inside the analysis — possibly
/// unwinding a worker thread mid-pool. The `try_*` query methods reject
/// such inputs up front with a typed, recoverable error.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum QueryError {
    /// The endpoints do not form an interval (`NaN`, or `lo > hi`).
    InvalidInterval {
        /// Requested lower endpoint.
        lo: f64,
        /// Requested upper endpoint.
        hi: f64,
    },
    /// A histogram domain must be bounded with positive width.
    InvalidDomain {
        /// Requested lower edge.
        lo: f64,
        /// Requested upper edge.
        hi: f64,
    },
    /// A histogram needs at least one bin.
    NoBins,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::InvalidInterval { lo, hi } => {
                write!(f, "invalid query interval endpoints [{lo}, {hi}]")
            }
            QueryError::InvalidDomain { lo, hi } => write!(
                f,
                "histogram domain [{lo}, {hi}] must be bounded with positive width"
            ),
            QueryError::NoBins => write!(f, "histogram needs at least one bin"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Validates raw query endpoints into an [`Interval`].
fn valid_interval(lo: f64, hi: f64) -> Result<Interval, QueryError> {
    Interval::try_new(lo, hi).ok_or(QueryError::InvalidInterval { lo, hi })
}

/// Structural path equality with an `Arc` pointer fast path.
///
/// Cache entries cloned from an analyzer's own path share every inner
/// `Arc` with it, so a same-analyzer re-lookup short-circuits on
/// pointer identity (O(#constraints + #scores) pointer compares) and
/// only genuinely cross-analyzer hits pay the deep `SymVal` walk —
/// important because the comparison runs under the cache mutex.
fn same_path(a: &SymPath, b: &SymPath) -> bool {
    let arc_eq = |x: &Arc<gubpi_symbolic::SymVal>, y: &Arc<gubpi_symbolic::SymVal>| {
        Arc::ptr_eq(x, y) || x == y
    };
    a.n_samples == b.n_samples
        && a.truncated == b.truncated
        && a.constraints.len() == b.constraints.len()
        && a.scores.len() == b.scores.len()
        && arc_eq(&a.result, &b.result)
        && a.constraints
            .iter()
            .zip(&b.constraints)
            .all(|(x, y)| x.dir == y.dir && arc_eq(&x.value, &y.value))
        && a.scores.iter().zip(&b.scores).all(|(x, y)| arc_eq(x, y))
}

/// A prepared analysis: program parsed, typed, symbolically executed.
///
/// Queries and histograms reuse the path set, so asking many questions of
/// one program costs one symbolic execution; repeated or overlapping
/// queries additionally hit a per-path memo cache (see
/// [`Analyzer::cache_stats`]).
pub struct Analyzer {
    program: Program,
    simple: TypeMap,
    typing: IntervalTyping,
    paths: Vec<SymPath>,
    /// `paths[i].fingerprint()`, precomputed once for the memo cache.
    fingerprints: Vec<u64>,
    cache: SharedQueryCache,
    opts: AnalysisOptions,
}

impl Analyzer {
    /// Parses, type-checks and symbolically executes `source`.
    ///
    /// # Errors
    ///
    /// Propagates lexing, parsing and simple-type errors.
    pub fn from_source(source: &str, opts: AnalysisOptions) -> Result<Analyzer, LangError> {
        let program = parse(source)?;
        Analyzer::from_program(program, opts)
    }

    /// [`Analyzer::from_source`] attached to a [`SharedQueryCache`], so
    /// repeated queries across analyzer instances reuse warm per-path
    /// results.
    ///
    /// # Errors
    ///
    /// Propagates lexing, parsing and simple-type errors.
    pub fn from_source_with_cache(
        source: &str,
        opts: AnalysisOptions,
        cache: &SharedQueryCache,
    ) -> Result<Analyzer, LangError> {
        let program = parse(source)?;
        Analyzer::from_program_with_cache(program, opts, cache)
    }

    /// Analysis of an already-parsed program.
    ///
    /// # Errors
    ///
    /// Propagates simple-type errors.
    pub fn from_program(program: Program, opts: AnalysisOptions) -> Result<Analyzer, LangError> {
        Analyzer::from_program_with_cache(program, opts, &SharedQueryCache::new())
    }

    /// [`Analyzer::from_program`] attached to a [`SharedQueryCache`].
    ///
    /// Symbolic execution shards its branch frontier over the worker
    /// count resolved from `opts.threads` (the path set is identical for
    /// every setting; see `gubpi_symbolic`'s docs).
    ///
    /// # Errors
    ///
    /// Propagates simple-type errors.
    pub fn from_program_with_cache(
        program: Program,
        opts: AnalysisOptions,
        cache: &SharedQueryCache,
    ) -> Result<Analyzer, LangError> {
        let simple = infer(&program)?;
        let typing = infer_interval_types(&program, &simple);
        let mut sym = opts.sym;
        sym.frontier_workers = opts.threads.worker_count(usize::MAX);
        let paths = symbolic_paths(&program, &typing, sym);
        let fingerprints = paths.iter().map(SymPath::fingerprint).collect();
        Ok(Analyzer {
            program,
            simple,
            typing,
            paths,
            fingerprints,
            cache: cache.clone(),
            opts,
        })
    }

    /// The memo cache this analyzer reads and fills; hand the clone to
    /// [`Analyzer::from_source_with_cache`] to share warm entries.
    pub fn shared_cache(&self) -> SharedQueryCache {
        self.cache.clone()
    }

    /// The analysed program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The simple types.
    pub fn simple_types(&self) -> &TypeMap {
        &self.simple
    }

    /// The weight-aware interval typing.
    pub fn interval_typing(&self) -> &IntervalTyping {
        &self.typing
    }

    /// The symbolic interval paths found by Algorithm 1's exploration.
    pub fn paths(&self) -> &[SymPath] {
        &self.paths
    }

    /// How many paths the linear semantics (§6.4) applies to.
    pub fn linear_path_count(&self) -> usize {
        self.paths.iter().filter(|p| linear_applicable(p)).count()
    }

    /// `(hits, misses)` of the per-path query memo cache so far. With a
    /// shared cache the counters aggregate over every attached analyzer
    /// (each per-path lookup is counted exactly once).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Drops every memoised per-path result (used by benchmarks to time
    /// cold queries; results are unaffected because bounding is pure).
    /// With a shared cache this clears it for every attached analyzer.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Guaranteed bounds on the **unnormalised** denotation `⟦P⟧(U)`
    /// (Corollary 6.3).
    pub fn denotation_bounds(&self, u: Interval) -> (f64, f64) {
        self.denotation_bounds_with(u, self.opts.bounds)
    }

    /// [`Analyzer::denotation_bounds`] under explicit per-path bounding
    /// options (the memo cache keys on them, so mixing configurations on
    /// one analyzer is safe).
    pub fn denotation_bounds_with(&self, u: Interval, bounds: PathBoundOptions) -> (f64, f64) {
        let method = self.opts.method;
        let key = |i: usize| -> QueryKey {
            (
                self.fingerprints[i],
                u.lo().to_bits(),
                u.hi().to_bits(),
                bounds,
                method,
            )
        };
        // One lock for the whole lookup pass: cached results are read
        // out before dispatch, so workers never contend on the cache.
        // Fingerprint hits are verified by structural path equality
        // before reuse (the cache may be shared across analyzers).
        let cached: Vec<Option<(f64, f64)>> = {
            let map = self.cache.inner.map.lock().expect("cache poisoned");
            (0..self.paths.len())
                .map(|i| {
                    map.get(&key(i)).and_then(|bucket| {
                        bucket
                            .iter()
                            .find(|(p, _)| same_path(p, &self.paths[i]))
                            .map(|&(_, v)| v)
                    })
                })
                .collect()
        };
        let misses: Vec<(usize, &SymPath)> = cached
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| (i, &self.paths[i]))
            .collect();
        let hits = (self.paths.len() - misses.len()) as u64;
        self.cache.inner.hits.fetch_add(hits, Ordering::Relaxed);
        self.cache
            .inner
            .misses
            .fetch_add(misses.len() as u64, Ordering::Relaxed);
        // Pick the parallelism grain: with fewer missing paths than
        // would keep the pool busy, parallelise *inside* each path
        // (grid cells / chunk combinations) instead of across paths.
        // Either grain produces bit-identical bounds.
        let threads = self.opts.threads;
        let workers = threads.worker_count(usize::MAX);
        let bound_one = |p: &SymPath, inner: Threads| -> (f64, f64) {
            match method {
                Method::Auto => bound_path_query_threaded(p, u, bounds, inner),
                Method::Grid => {
                    let mut sink = SingleQuery::new(u);
                    bound_path_grid_only_threaded(p, bounds, inner, &mut sink);
                    (sink.lo, sink.hi)
                }
            }
        };
        let computed: Vec<(f64, f64)> = if workers > 1 && misses.len() < workers * 2 {
            misses.iter().map(|&(_, p)| bound_one(p, threads)).collect()
        } else {
            map_paths(threads, &misses, |_, &(_, p)| bound_one(p, Threads::Off))
        };
        {
            let mut map = self.cache.inner.map.lock().expect("cache poisoned");
            for (&(i, _), &v) in misses.iter().zip(&computed) {
                let bucket = map.entry(key(i)).or_default();
                // A racing analyzer may have inserted the same path
                // meanwhile; bounding is pure, so skipping the duplicate
                // loses nothing.
                if !bucket.iter().any(|(p, _)| same_path(p, &self.paths[i])) {
                    bucket.push((self.paths[i].clone(), v));
                }
            }
        }
        let mut per_path = cached;
        for (&(i, _), &v) in misses.iter().zip(&computed) {
            per_path[i] = Some(v);
        }
        // Deterministic reduce: sum the per-path bounds in path order, so
        // the float summation order is independent of the thread count.
        let mut lo = 0.0;
        let mut hi = 0.0;
        for r in per_path {
            let (l, h) = r.expect("every path is cached or computed");
            lo += l;
            hi += h;
        }
        (lo, hi)
    }

    /// Bounds on the normalising constant `Z = ⟦P⟧(R)`.
    pub fn normalizing_constant(&self) -> (f64, f64) {
        self.denotation_bounds(Interval::REAL)
    }

    /// Guaranteed bounds on the **normalised** posterior probability
    /// `posterior_P(U) = ⟦P⟧(U) / Z`.
    ///
    /// Uses the tight two-query normalisation: with `m = ⟦P⟧(U)` and
    /// `r = ⟦P⟧(R∖U)`, `posterior = m/(m+r)` is monotone in both.
    pub fn posterior_probability(&self, u: Interval) -> (f64, f64) {
        let (m_lo, m_hi) = self.denotation_bounds(u);
        // Complement mass via two ray queries. For the lower bound the
        // rays are shrunk by one ulp so they are strictly disjoint from U
        // (closed intervals would otherwise double-count boundary atoms);
        // the closed rays over-cover the complement for the upper bound,
        // which is sound.
        let left_closed = Interval::new(f64::NEG_INFINITY, u.lo());
        let right_closed = Interval::new(u.hi(), f64::INFINITY);
        let left_open = Interval::new(f64::NEG_INFINITY, gubpi_interval::next_after_down(u.lo()));
        let right_open = Interval::new(gubpi_interval::next_after_up(u.hi()), f64::INFINITY);
        let (ll, _) = self.denotation_bounds(left_open);
        let (rl, _) = self.denotation_bounds(right_open);
        let (_, lh) = self.denotation_bounds(left_closed);
        let (_, rh) = self.denotation_bounds(right_closed);
        let (r_lo, r_hi) = (ll + rl, lh + rh);
        let lo = if m_lo <= 0.0 {
            0.0
        } else {
            m_lo / (m_lo + r_hi)
        };
        let hi = if m_hi <= 0.0 {
            0.0
        } else if r_lo <= 0.0 {
            1.0
        } else {
            (m_hi / (m_hi + r_lo)).min(1.0)
        };
        (lo, hi)
    }

    /// Histogram bounds over `domain` with `bins` bins, on the
    /// unnormalised denotation; call
    /// [`HistogramBounds::normalized`] for posterior bounds.
    ///
    /// One pass over all regions; regions whose value range straddles a
    /// bin edge contribute their upper mass to both neighbours (sound,
    /// slightly conservative). Use [`Analyzer::histogram_exact`] for
    /// per-bin query precision.
    ///
    /// Paths are bounded in parallel into per-path partial histograms,
    /// merged in path order (same determinism guarantee as the queries).
    pub fn histogram(&self, domain: Interval, bins: usize) -> HistogramBounds {
        let method = self.opts.method;
        let bounds = self.opts.bounds;
        let threads = self.opts.threads;
        let workers = threads.worker_count(usize::MAX);
        let bound_into = |p: &SymPath, inner: Threads, h: &mut HistogramBounds| match method {
            Method::Auto => bound_path_threaded(p, bounds, inner, h),
            Method::Grid => bound_path_grid_only_threaded(p, bounds, inner, h),
        };
        // Same grain policy as the queries: few paths ⇒ parallelise the
        // regions inside each path instead of across paths.
        let partials: Vec<HistogramBounds> = if workers > 1 && self.paths.len() < workers * 2 {
            self.paths
                .iter()
                .map(|p| {
                    let mut h = HistogramBounds::new(domain, bins);
                    bound_into(p, threads, &mut h);
                    h
                })
                .collect()
        } else {
            map_paths(threads, &self.paths, |_i, p| {
                let mut h = HistogramBounds::new(domain, bins);
                bound_into(p, Threads::Off, &mut h);
                h
            })
        };
        let mut h = HistogramBounds::new(domain, bins);
        for part in &partials {
            h.merge_from(part);
        }
        h
    }

    /// Histogram bounds computed as one exact query per bin (plus the two
    /// tails) — tighter than [`Analyzer::histogram`] at `bins + 2` times
    /// the cost.
    pub fn histogram_exact(&self, domain: Interval, bins: usize) -> HistogramBounds {
        let mut h = HistogramBounds::new(domain, bins);
        for i in 0..bins {
            let (lo, hi) = self.denotation_bounds(h.bin(i));
            h.set_bin(i, lo, hi);
        }
        h.left_tail = self.denotation_bounds(Interval::new(f64::NEG_INFINITY, domain.lo()));
        h.right_tail = self.denotation_bounds(Interval::new(domain.hi(), f64::INFINITY));
        h
    }

    // ----------------------------------------------------------------
    // Validated query API: raw endpoints in, typed errors out
    // ----------------------------------------------------------------

    /// [`Analyzer::denotation_bounds`] on raw endpoints, validating them
    /// instead of panicking deep inside the analysis.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidInterval`] when an endpoint is `NaN` or
    /// `lo > hi`.
    pub fn try_denotation_bounds(&self, lo: f64, hi: f64) -> Result<(f64, f64), QueryError> {
        Ok(self.denotation_bounds(valid_interval(lo, hi)?))
    }

    /// [`Analyzer::posterior_probability`] on raw endpoints.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidInterval`] when an endpoint is `NaN` or
    /// `lo > hi`.
    pub fn try_posterior_probability(&self, lo: f64, hi: f64) -> Result<(f64, f64), QueryError> {
        Ok(self.posterior_probability(valid_interval(lo, hi)?))
    }

    /// [`Analyzer::histogram`] on raw domain edges, validating the
    /// domain (bounded, positive width) and bin count.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidInterval`] for `NaN`/inverted endpoints,
    /// [`QueryError::InvalidDomain`] for unbounded or zero-width
    /// domains, [`QueryError::NoBins`] for `bins == 0`.
    pub fn try_histogram(
        &self,
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> Result<HistogramBounds, QueryError> {
        Ok(self.histogram(valid_domain(lo, hi, bins)?, bins))
    }

    /// [`Analyzer::histogram_exact`] on raw domain edges; same
    /// validation as [`Analyzer::try_histogram`].
    ///
    /// # Errors
    ///
    /// See [`Analyzer::try_histogram`].
    pub fn try_histogram_exact(
        &self,
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> Result<HistogramBounds, QueryError> {
        Ok(self.histogram_exact(valid_domain(lo, hi, bins)?, bins))
    }
}

/// Validates raw histogram parameters.
fn valid_domain(lo: f64, hi: f64, bins: usize) -> Result<Interval, QueryError> {
    let domain = valid_interval(lo, hi)?;
    if !domain.is_finite() || domain.width() <= 0.0 {
        return Err(QueryError::InvalidDomain { lo, hi });
    }
    if bins == 0 {
        return Err(QueryError::NoBins);
    }
    Ok(domain)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzer(src: &str) -> Analyzer {
        Analyzer::from_source(src, AnalysisOptions::default()).unwrap()
    }

    #[test]
    fn uniform_posterior_probability() {
        let a = analyzer("sample");
        let (lo, hi) = a.posterior_probability(Interval::new(0.25, 0.75));
        assert!(lo <= 0.5 && 0.5 <= hi);
        assert!(hi - lo < 1e-6, "[{lo}, {hi}]");
    }

    #[test]
    fn scoring_changes_posterior() {
        // score(x): posterior density 2x; P(X > 0.5) = 3/4.
        let a = analyzer("let x = sample in score(x); x");
        let (lo, hi) = a.posterior_probability(Interval::new(0.5, 1.0));
        assert!(lo <= 0.75 && 0.75 <= hi, "[{lo}, {hi}]");
        assert!(hi - lo < 0.1, "[{lo}, {hi}]");
    }

    #[test]
    fn histogram_brackets_uniform() {
        let a = analyzer("sample");
        let h = a.histogram(Interval::new(0.0, 1.0), 4);
        for i in 0..4 {
            let (lo, hi) = h.unnormalized(i);
            assert!(
                lo <= 0.25 + 1e-9 && 0.25 <= hi + 1e-9,
                "bin {i}: [{lo}, {hi}]"
            );
        }
        let n = h.normalized();
        for nb in n {
            assert!(nb.lo <= 0.25 + 1e-9 && 0.25 <= nb.hi + 1e-9);
        }
    }

    #[test]
    fn grid_method_is_sound_but_looser() {
        let src = "let x = sample in score(x); x";
        let auto = analyzer(src);
        let grid = Analyzer::from_source(
            src,
            AnalysisOptions {
                method: Method::Grid,
                ..Default::default()
            },
        )
        .unwrap();
        let (al, ah) = auto.denotation_bounds(Interval::UNIT);
        let (gl, gh) = grid.denotation_bounds(Interval::UNIT);
        assert!(gl <= 0.5 && 0.5 <= gh);
        assert!(al <= 0.5 && 0.5 <= ah);
        assert!(ah - al <= gh - gl + 1e-9, "linear at least as tight");
    }

    #[test]
    fn recursive_program_gets_finite_bounds() {
        // Geometric recursion: ⟦P⟧(R) = Σ (1/2)^{k+1} = 1.
        let src = "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0";
        let a = Analyzer::from_source(
            src,
            AnalysisOptions {
                sym: SymExecOptions {
                    max_fix_unfoldings: 8,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let (z_lo, z_hi) = a.normalizing_constant();
        assert!(z_lo > 0.9, "explored mass ≥ 1 − 2⁻⁸, got {z_lo}");
        assert!(z_hi >= 1.0 - 1e-9);
        // P(result = 0) = 1/2 exactly; bin [−0.25, 0.25] captures it.
        let (lo, hi) = a.denotation_bounds(Interval::new(-0.25, 0.25));
        assert!(lo <= 0.5 + 1e-9 && 0.5 <= hi + 1e-9, "[{lo}, {hi}]");
    }

    #[test]
    fn linear_paths_are_detected() {
        let a = analyzer("if sample + sample <= 1 then sample else 1 - sample");
        assert_eq!(a.linear_path_count(), a.paths().len());
        assert!(a.paths().len() >= 2);
    }

    #[test]
    fn constant_invalid_dist_params_have_zero_mass() {
        // Every concrete run scores density 0 (σ = −0.5 is out of
        // domain), so the true denotation is 0 — and the *guaranteed*
        // bounds must say so. Regression: the interval lifting used to
        // clamp σ into validity, reporting a huge positive lower bound.
        let a = analyzer("observe 0 from normal(0, 0 - 0.5); sample");
        let (z_lo, z_hi) = a.normalizing_constant();
        assert_eq!((z_lo, z_hi), (0.0, 0.0), "Z must be exactly 0");
    }

    #[test]
    fn runtime_invalid_dist_params_keep_bounds_sound() {
        // σ = sample − 0.5: invalid (zero density) for sample ≤ 0.5.
        // True Z = ∫_{0.5}^{1} pdf_{N(0, s−0.5)}(0.4) ds ≈ 0.171213
        // (numerical quadrature).
        let mut opts = AnalysisOptions::default();
        opts.bounds.splits = 64;
        let a = Analyzer::from_source("observe 0.4 from normal(0, sample - 0.5); sample", opts)
            .unwrap();
        let (z_lo, z_hi) = a.normalizing_constant();
        let truth = 0.171_213;
        assert!(
            z_lo <= truth && truth <= z_hi,
            "Z = {truth} outside [{z_lo}, {z_hi}]"
        );
        assert!(z_hi.is_finite());
    }

    #[test]
    fn repeated_queries_hit_the_memo_cache() {
        let a = analyzer("if sample <= 0.5 then sample else 1 - sample");
        let n_paths = a.paths().len() as u64;
        assert_eq!(a.cache_stats(), (0, 0));
        let first = a.denotation_bounds(Interval::new(0.0, 0.5));
        let (h0, m0) = a.cache_stats();
        assert_eq!((h0, m0), (0, n_paths));
        let second = a.denotation_bounds(Interval::new(0.0, 0.5));
        let (h1, m1) = a.cache_stats();
        assert_eq!((h1, m1), (n_paths, n_paths));
        assert_eq!(first, second, "cache must return bit-identical bounds");
        // A different query misses again.
        let _ = a.denotation_bounds(Interval::new(0.25, 0.75));
        let (h2, m2) = a.cache_stats();
        assert_eq!(h2, n_paths);
        assert_eq!(m2, 2 * n_paths);
    }

    #[test]
    fn cache_keys_on_path_bound_options() {
        let a = analyzer("let x = sample in score(x); x");
        let u = Interval::new(0.0, 0.5);
        let coarse = PathBoundOptions {
            splits: 4,
            ..Default::default()
        };
        let fine = PathBoundOptions {
            splits: 64,
            ..Default::default()
        };
        let c1 = a.denotation_bounds_with(u, coarse);
        let f1 = a.denotation_bounds_with(u, fine);
        // Different options must not alias: the fine query recomputes
        // rather than reusing the coarse result.
        assert!(f1.1 - f1.0 < c1.1 - c1.0, "fine {f1:?} vs coarse {c1:?}");
        let (hits, misses) = a.cache_stats();
        assert_eq!(hits, 0);
        assert_eq!(misses, 2 * a.paths().len() as u64);
        // Re-asking each configuration hits its own entry.
        assert_eq!(a.denotation_bounds_with(u, coarse), c1);
        assert_eq!(a.denotation_bounds_with(u, fine), f1);
        let (hits, _) = a.cache_stats();
        assert_eq!(hits, 2 * a.paths().len() as u64);
    }

    #[test]
    fn invalid_query_endpoints_yield_typed_errors() {
        let a = analyzer("sample");
        assert_eq!(
            a.try_denotation_bounds(1.0, 0.0),
            Err(QueryError::InvalidInterval { lo: 1.0, hi: 0.0 })
        );
        assert!(matches!(
            a.try_denotation_bounds(f64::NAN, 1.0),
            Err(QueryError::InvalidInterval { .. })
        ));
        assert!(matches!(
            a.try_posterior_probability(0.5, f64::NAN),
            Err(QueryError::InvalidInterval { .. })
        ));
        assert!(matches!(
            a.try_histogram(0.0, f64::INFINITY, 4),
            Err(QueryError::InvalidDomain { .. })
        ));
        assert!(matches!(
            a.try_histogram(0.5, 0.5, 4),
            Err(QueryError::InvalidDomain { .. })
        ));
        assert_eq!(a.try_histogram(0.0, 1.0, 0).err(), Some(QueryError::NoBins));
        assert!(matches!(
            a.try_histogram_exact(2.0, 1.0, 4),
            Err(QueryError::InvalidInterval { .. })
        ));
    }

    #[test]
    fn valid_raw_endpoints_match_the_interval_api() {
        let a = analyzer("let x = sample in score(x); x");
        let u = Interval::new(0.25, 0.75);
        assert_eq!(
            a.try_denotation_bounds(0.25, 0.75),
            Ok(a.denotation_bounds(u))
        );
        assert_eq!(
            a.try_posterior_probability(0.25, 0.75),
            Ok(a.posterior_probability(u))
        );
        let h = a.try_histogram(0.0, 1.0, 4).unwrap();
        let href = a.histogram(Interval::new(0.0, 1.0), 4);
        for i in 0..4 {
            assert_eq!(h.unnormalized(i), href.unnormalized(i));
        }
    }

    #[test]
    fn clear_cache_resets_counters_not_results() {
        let a = analyzer("sample");
        let u = Interval::new(0.1, 0.9);
        let r1 = a.denotation_bounds(u);
        a.clear_cache();
        assert_eq!(a.cache_stats(), (0, 0));
        let r2 = a.denotation_bounds(u);
        assert_eq!(r1, r2);
        let (hits, misses) = a.cache_stats();
        assert_eq!(hits, 0);
        assert_eq!(misses, a.paths().len() as u64);
    }
}
