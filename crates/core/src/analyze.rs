//! The analyzer facade (Algorithm 1).

use gubpi_interval::Interval;
use gubpi_lang::{infer, parse, LangError, Program, TypeMap};
use gubpi_symbolic::{symbolic_paths, SymExecOptions, SymPath};
use gubpi_types::{infer_interval_types, IntervalTyping};

use crate::histogram::HistogramBounds;
use crate::pathbounds::{
    bound_path, bound_path_grid_only, bound_path_query, linear_applicable, PathBoundOptions,
    SingleQuery,
};

/// Which per-path semantics to use.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Method {
    /// Linear semantics where applicable, grid otherwise (§6.4 + §6.3).
    #[default]
    Auto,
    /// Force the standard grid semantics (§6.3) for every path.
    Grid,
}

/// End-to-end analysis options.
#[derive(Copy, Clone, Debug, Default)]
pub struct AnalysisOptions {
    /// Symbolic execution (depth limit `D`, path caps).
    pub sym: SymExecOptions,
    /// Per-path bounding (splits, volume method).
    pub bounds: PathBoundOptions,
    /// Semantics selection.
    pub method: Method,
}

/// A prepared analysis: program parsed, typed, symbolically executed.
///
/// Queries and histograms reuse the path set, so asking many questions of
/// one program costs one symbolic execution.
pub struct Analyzer {
    program: Program,
    simple: TypeMap,
    typing: IntervalTyping,
    paths: Vec<SymPath>,
    opts: AnalysisOptions,
}

impl Analyzer {
    /// Parses, type-checks and symbolically executes `source`.
    ///
    /// # Errors
    ///
    /// Propagates lexing, parsing and simple-type errors.
    pub fn from_source(source: &str, opts: AnalysisOptions) -> Result<Analyzer, LangError> {
        let program = parse(source)?;
        Analyzer::from_program(program, opts)
    }

    /// Analysis of an already-parsed program.
    ///
    /// # Errors
    ///
    /// Propagates simple-type errors.
    pub fn from_program(program: Program, opts: AnalysisOptions) -> Result<Analyzer, LangError> {
        let simple = infer(&program)?;
        let typing = infer_interval_types(&program, &simple);
        let paths = symbolic_paths(&program, &typing, opts.sym);
        Ok(Analyzer {
            program,
            simple,
            typing,
            paths,
            opts,
        })
    }

    /// The analysed program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The simple types.
    pub fn simple_types(&self) -> &TypeMap {
        &self.simple
    }

    /// The weight-aware interval typing.
    pub fn interval_typing(&self) -> &IntervalTyping {
        &self.typing
    }

    /// The symbolic interval paths found by Algorithm 1's exploration.
    pub fn paths(&self) -> &[SymPath] {
        &self.paths
    }

    /// How many paths the linear semantics (§6.4) applies to.
    pub fn linear_path_count(&self) -> usize {
        self.paths.iter().filter(|p| linear_applicable(p)).count()
    }

    fn run_path_sink(&self, path: &SymPath, sink: &mut impl crate::pathbounds::BoundSink) {
        match self.opts.method {
            Method::Auto => bound_path(path, self.opts.bounds, sink),
            Method::Grid => bound_path_grid_only(path, self.opts.bounds, sink),
        }
    }

    /// Guaranteed bounds on the **unnormalised** denotation `⟦P⟧(U)`
    /// (Corollary 6.3).
    pub fn denotation_bounds(&self, u: Interval) -> (f64, f64) {
        let mut lo = 0.0;
        let mut hi = 0.0;
        for p in &self.paths {
            let (l, h) = match self.opts.method {
                Method::Auto => bound_path_query(p, u, self.opts.bounds),
                Method::Grid => {
                    let mut sink = SingleQuery::new(u);
                    bound_path_grid_only(p, self.opts.bounds, &mut sink);
                    (sink.lo, sink.hi)
                }
            };
            lo += l;
            hi += h;
        }
        (lo, hi)
    }

    /// Bounds on the normalising constant `Z = ⟦P⟧(R)`.
    pub fn normalizing_constant(&self) -> (f64, f64) {
        self.denotation_bounds(Interval::REAL)
    }

    /// Guaranteed bounds on the **normalised** posterior probability
    /// `posterior_P(U) = ⟦P⟧(U) / Z`.
    ///
    /// Uses the tight two-query normalisation: with `m = ⟦P⟧(U)` and
    /// `r = ⟦P⟧(R∖U)`, `posterior = m/(m+r)` is monotone in both.
    pub fn posterior_probability(&self, u: Interval) -> (f64, f64) {
        let (m_lo, m_hi) = self.denotation_bounds(u);
        // Complement mass via two ray queries. For the lower bound the
        // rays are shrunk by one ulp so they are strictly disjoint from U
        // (closed intervals would otherwise double-count boundary atoms);
        // the closed rays over-cover the complement for the upper bound,
        // which is sound.
        let left_closed = Interval::new(f64::NEG_INFINITY, u.lo());
        let right_closed = Interval::new(u.hi(), f64::INFINITY);
        let left_open = Interval::new(f64::NEG_INFINITY, gubpi_interval::next_after_down(u.lo()));
        let right_open = Interval::new(gubpi_interval::next_after_up(u.hi()), f64::INFINITY);
        let (ll, _) = self.denotation_bounds(left_open);
        let (rl, _) = self.denotation_bounds(right_open);
        let (_, lh) = self.denotation_bounds(left_closed);
        let (_, rh) = self.denotation_bounds(right_closed);
        let (r_lo, r_hi) = (ll + rl, lh + rh);
        let lo = if m_lo <= 0.0 {
            0.0
        } else {
            m_lo / (m_lo + r_hi)
        };
        let hi = if m_hi <= 0.0 {
            0.0
        } else if r_lo <= 0.0 {
            1.0
        } else {
            (m_hi / (m_hi + r_lo)).min(1.0)
        };
        (lo, hi)
    }

    /// Histogram bounds over `domain` with `bins` bins, on the
    /// unnormalised denotation; call
    /// [`HistogramBounds::normalized`] for posterior bounds.
    ///
    /// One pass over all regions; regions whose value range straddles a
    /// bin edge contribute their upper mass to both neighbours (sound,
    /// slightly conservative). Use [`Analyzer::histogram_exact`] for
    /// per-bin query precision.
    pub fn histogram(&self, domain: Interval, bins: usize) -> HistogramBounds {
        let mut h = HistogramBounds::new(domain, bins);
        for p in &self.paths {
            self.run_path_sink(p, &mut h);
        }
        h
    }

    /// Histogram bounds computed as one exact query per bin (plus the two
    /// tails) — tighter than [`Analyzer::histogram`] at `bins + 2` times
    /// the cost.
    pub fn histogram_exact(&self, domain: Interval, bins: usize) -> HistogramBounds {
        let mut h = HistogramBounds::new(domain, bins);
        for i in 0..bins {
            let (lo, hi) = self.denotation_bounds(h.bin(i));
            h.set_bin(i, lo, hi);
        }
        h.left_tail = self.denotation_bounds(Interval::new(f64::NEG_INFINITY, domain.lo()));
        h.right_tail = self.denotation_bounds(Interval::new(domain.hi(), f64::INFINITY));
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzer(src: &str) -> Analyzer {
        Analyzer::from_source(src, AnalysisOptions::default()).unwrap()
    }

    #[test]
    fn uniform_posterior_probability() {
        let a = analyzer("sample");
        let (lo, hi) = a.posterior_probability(Interval::new(0.25, 0.75));
        assert!(lo <= 0.5 && 0.5 <= hi);
        assert!(hi - lo < 1e-6, "[{lo}, {hi}]");
    }

    #[test]
    fn scoring_changes_posterior() {
        // score(x): posterior density 2x; P(X > 0.5) = 3/4.
        let a = analyzer("let x = sample in score(x); x");
        let (lo, hi) = a.posterior_probability(Interval::new(0.5, 1.0));
        assert!(lo <= 0.75 && 0.75 <= hi, "[{lo}, {hi}]");
        assert!(hi - lo < 0.1, "[{lo}, {hi}]");
    }

    #[test]
    fn histogram_brackets_uniform() {
        let a = analyzer("sample");
        let h = a.histogram(Interval::new(0.0, 1.0), 4);
        for i in 0..4 {
            let (lo, hi) = h.unnormalized(i);
            assert!(
                lo <= 0.25 + 1e-9 && 0.25 <= hi + 1e-9,
                "bin {i}: [{lo}, {hi}]"
            );
        }
        let n = h.normalized();
        for nb in n {
            assert!(nb.lo <= 0.25 + 1e-9 && 0.25 <= nb.hi + 1e-9);
        }
    }

    #[test]
    fn grid_method_is_sound_but_looser() {
        let src = "let x = sample in score(x); x";
        let auto = analyzer(src);
        let grid = Analyzer::from_source(
            src,
            AnalysisOptions {
                method: Method::Grid,
                ..Default::default()
            },
        )
        .unwrap();
        let (al, ah) = auto.denotation_bounds(Interval::UNIT);
        let (gl, gh) = grid.denotation_bounds(Interval::UNIT);
        assert!(gl <= 0.5 && 0.5 <= gh);
        assert!(al <= 0.5 && 0.5 <= ah);
        assert!(ah - al <= gh - gl + 1e-9, "linear at least as tight");
    }

    #[test]
    fn recursive_program_gets_finite_bounds() {
        // Geometric recursion: ⟦P⟧(R) = Σ (1/2)^{k+1} = 1.
        let src = "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0";
        let a = Analyzer::from_source(
            src,
            AnalysisOptions {
                sym: SymExecOptions {
                    max_fix_unfoldings: 8,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let (z_lo, z_hi) = a.normalizing_constant();
        assert!(z_lo > 0.9, "explored mass ≥ 1 − 2⁻⁸, got {z_lo}");
        assert!(z_hi >= 1.0 - 1e-9);
        // P(result = 0) = 1/2 exactly; bin [−0.25, 0.25] captures it.
        let (lo, hi) = a.denotation_bounds(Interval::new(-0.25, 0.25));
        assert!(lo <= 0.5 + 1e-9 && 0.5 <= hi + 1e-9, "[{lo}, {hi}]");
    }

    #[test]
    fn linear_paths_are_detected() {
        let a = analyzer("if sample + sample <= 1 then sample else 1 - sample");
        assert_eq!(a.linear_path_count(), a.paths().len());
        assert!(a.paths().len() >= 2);
    }
}
