//! Parallel bounding engine (the scaling half of Algorithm 1).
//!
//! After symbolic execution the algorithm is embarrassingly parallel at
//! two granularities: *across* paths (each `SymPath` is bounded
//! independently and the per-path results are summed) and *within* one
//! path (the §6.3 grid cells and §6.4 chunk combinations are
//! independent regions of one index space). This module provides the
//! worker pool that exploits both — scoped `std::thread` workers
//! claiming chunks of a job set from a shared atomic queue (chunked
//! work-stealing; no external deps, per the offline `vendor/` policy) —
//! via [`map_paths`] (one result per item) and [`map_ranges`] (one
//! partial result per contiguous index range), together with the
//! [`Threads`] knob that selects the degree of parallelism.
//!
//! # Determinism guarantee
//!
//! Guaranteed bounds must not depend on the thread count, so the engine
//! never reduces in completion order: [`map_paths`] returns one result
//! *per path, in path order*, [`map_ranges`] returns one partial *per
//! range, in index order* (and the range decomposition itself is a pure
//! function of the index-space size), and every caller folds those
//! vectors sequentially. Per-path and per-region computations are pure,
//! so the floating-point summation order — and therefore every reported
//! bound, bit for bit — is identical under [`Threads::Off`],
//! [`Threads::Fixed`] and [`Threads::Auto`]. The
//! `tests/parallel_determinism.rs` suite holds this line.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Degree of parallelism for per-path bounding.
///
/// The default is [`Threads::Auto`]. `Auto` honours the `GUBPI_THREADS`
/// environment variable (`off`, `auto`, or a positive worker count) so
/// whole test suites and CI jobs can be pinned without code changes;
/// explicit `Fixed`/`Off` settings ignore the environment.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Threads {
    /// Use `GUBPI_THREADS` if set, otherwise the available hardware
    /// parallelism.
    #[default]
    Auto,
    /// Exactly `n` workers (values of 0 and 1 both mean sequential).
    Fixed(usize),
    /// Sequential execution on the calling thread.
    Off,
}

impl Threads {
    /// Parses a `GUBPI_THREADS`-style string (`"off"`, `"auto"`, or a
    /// **positive** worker count).
    ///
    /// `"0"` is rejected rather than parsed as `Fixed(0)`: `Fixed(0)`
    /// silently clamps to one worker, so accepting it would make
    /// `GUBPI_THREADS=0` (or `repro --threads 0`) run sequentially while
    /// looking like a valid parallel setting. The CLI surfaces the
    /// `None` as an explicit error; the `GUBPI_THREADS` fallback inside
    /// [`Threads::worker_count`] degrades invalid values to sequential
    /// (never to full fan-out). Spell sequential as `off`.
    pub fn parse(s: &str) -> Option<Threads> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "seq" | "sequential" => Some(Threads::Off),
            "auto" | "" => Some(Threads::Auto),
            n => n
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .map(Threads::Fixed),
        }
    }

    /// The number of workers to use for `jobs` independent tasks.
    pub fn worker_count(self, jobs: usize) -> usize {
        let raw = match self {
            Threads::Off => 1,
            Threads::Fixed(n) => n.max(1),
            Threads::Auto => match std::env::var("GUBPI_THREADS") {
                Ok(v) => match Threads::parse(&v) {
                    Some(Threads::Auto) => hardware_threads(),
                    Some(Threads::Off) => 1,
                    Some(Threads::Fixed(n)) => n.max(1),
                    // An explicitly set but invalid GUBPI_THREADS
                    // (including "0") must not silently fan out to every
                    // core: degrade to sequential, the conservative
                    // reading of "the user tried to restrict threading".
                    None => 1,
                },
                Err(_) => hardware_threads(),
            },
        };
        raw.min(jobs.max(1))
    }
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item of `jobs`, returning the results **in item
/// order** regardless of which worker computed what.
///
/// Workers claim chunks of consecutive indices from a shared atomic
/// cursor, so long paths at the front do not serialise the tail. With a
/// resolved worker count of 1 (or ≤ 1 job) this degrades to a plain
/// sequential map on the calling thread with zero overhead.
///
/// # Panics
///
/// Propagates the first worker panic.
pub fn map_paths<T, R, F>(threads: Threads, jobs: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.worker_count(jobs.len());
    if workers <= 1 || jobs.len() <= 1 {
        return jobs.iter().enumerate().map(|(i, p)| f(i, p)).collect();
    }
    // Small chunks keep the load balanced when per-path costs are skewed
    // (one recursive path can dominate); ~4 chunks per worker amortises
    // the atomic traffic.
    let chunk = (jobs.len() / (workers * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let worker_outputs: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= jobs.len() {
                            break;
                        }
                        let end = (start + chunk).min(jobs.len());
                        for (i, job) in jobs.iter().enumerate().take(end).skip(start) {
                            out.push((i, f(i, job)));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    });
    // Deterministic reduce step: place every result at its path index.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(jobs.len());
    slots.resize_with(jobs.len(), || None);
    for (i, r) in worker_outputs.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job produces exactly one result"))
        .collect()
}

/// Splits the index space `0..total` into contiguous ranges and applies
/// `f` to every range, returning the partial results **in index order**
/// regardless of which worker computed what.
///
/// This is the region-level (intra-path) counterpart of [`map_paths`]:
/// `bound_grid`'s cell space and `bound_linear`'s chunk-combination
/// space are flat index spaces whose per-index work is pure, so a
/// caller can compute one partial sink per range and replay the
/// partials in range order — the concatenation visits every index in
/// `0..total` order, making the reduce bit-identical to a sequential
/// sweep for every thread count.
///
/// The range decomposition depends only on `total` and the resolved
/// worker count — never on scheduling — and a resolved worker count of
/// 1 degrades to a single `f(0..total)` call on the calling thread.
pub fn map_ranges<R, F>(threads: Threads, total: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let workers = threads.worker_count(total);
    if workers <= 1 || total <= 1 {
        return vec![f(0..total)];
    }
    // ~4 ranges per worker keeps the load balanced when per-region costs
    // are skewed (feasibility pruning makes some ranges near-free).
    let n_ranges = (workers * 4).min(total);
    let base = total / n_ranges;
    let rem = total % n_ranges;
    let mut ranges = Vec::with_capacity(n_ranges);
    let mut start = 0;
    for i in 0..n_ranges {
        let len = base + usize::from(i < rem);
        ranges.push(start..start + len);
        start += len;
    }
    map_paths(threads, &ranges, |_, r| f(r.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let jobs: Vec<usize> = (0..1000).collect();
        for threads in [Threads::Off, Threads::Fixed(1), Threads::Fixed(4)] {
            let out = map_paths(threads, &jobs, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, jobs.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(map_paths(Threads::Fixed(8), &none, |_, &x| x).is_empty());
        assert_eq!(map_paths(Threads::Fixed(8), &[7u32], |_, &x| x), vec![7]);
    }

    #[test]
    fn worker_count_resolution() {
        assert_eq!(Threads::Off.worker_count(100), 1);
        assert_eq!(Threads::Fixed(0).worker_count(100), 1);
        assert_eq!(Threads::Fixed(4).worker_count(100), 4);
        // Never more workers than jobs.
        assert_eq!(Threads::Fixed(16).worker_count(3), 3);
        assert!(Threads::Auto.worker_count(100) >= 1);
    }

    #[test]
    fn parse_accepts_the_env_syntax() {
        assert_eq!(Threads::parse("off"), Some(Threads::Off));
        assert_eq!(Threads::parse("auto"), Some(Threads::Auto));
        assert_eq!(Threads::parse("4"), Some(Threads::Fixed(4)));
        assert_eq!(Threads::parse(" 2 "), Some(Threads::Fixed(2)));
        assert_eq!(Threads::parse("bogus"), None);
    }

    #[test]
    fn parse_rejects_zero_workers() {
        // Regression: "0" used to parse as Fixed(0), which worker_count
        // silently clamps to 1 — a parallel-looking setting that ran
        // sequentially. Zero must be an error; sequential is "off".
        assert_eq!(Threads::parse("0"), None);
        assert_eq!(Threads::parse(" 0 "), None);
        assert_eq!(Threads::parse("00"), None);
    }

    #[test]
    fn map_ranges_covers_the_index_space_in_order() {
        for total in [0usize, 1, 2, 7, 64, 1000] {
            for threads in [Threads::Off, Threads::Fixed(1), Threads::Fixed(3)] {
                let partials = map_ranges(threads, total, |r| r.collect::<Vec<usize>>());
                let flat: Vec<usize> = partials.into_iter().flatten().collect();
                assert_eq!(
                    flat,
                    (0..total).collect::<Vec<usize>>(),
                    "total={total}, {threads:?}"
                );
            }
        }
    }

    #[test]
    fn map_ranges_decomposition_is_a_pure_function_of_total() {
        // Same thread setting ⇒ same ranges; and the *concatenation* is
        // independent of the setting (that is what the determinism
        // guarantee reduces over).
        let a = map_ranges(Threads::Fixed(4), 103, |r| vec![r]);
        let b = map_ranges(Threads::Fixed(4), 103, |r| vec![r]);
        assert_eq!(a, b);
    }

    #[test]
    fn worker_panic_propagates() {
        let jobs: Vec<usize> = (0..64).collect();
        let r = std::panic::catch_unwind(|| {
            map_paths(Threads::Fixed(4), &jobs, |_, &x| {
                assert!(x != 63, "boom");
                x
            })
        });
        assert!(r.is_err());
    }
}
