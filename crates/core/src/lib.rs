//! GuBPI: guaranteed lower/upper bounds on the posterior of universal
//! probabilistic programs.
//!
//! This crate is the top of the reproduction stack — the analogue of the
//! paper's tool (§6, Algorithm 1). The pipeline:
//!
//! 1. parse + simple-type a program (`gubpi-lang`);
//! 2. infer weight-aware interval types (`gubpi-types`);
//! 3. symbolically execute with a fixpoint-unfolding budget, using
//!    `approxFix` to close off recursion (`gubpi-symbolic`);
//! 4. bound the denotation `⟦Ψ⟧` of every symbolic interval path with
//!    either the **linear semantics** (§6.4: polytope volumes + LP score
//!    boxing, `gubpi-polytope`) or the **standard grid semantics** (§6.3:
//!    interval splitting of every sample variable);
//! 5. aggregate into query bounds, histogram bounds and normalised
//!    posterior bounds.
//!
//! The headline guarantee (Corollary 6.3):
//! `Σ_Ψ ⟦Ψ⟧_lb(U) ≤ ⟦P⟧(U) ≤ Σ_Ψ ⟦Ψ⟧_ub(U)`.
//!
//! # Quickstart
//!
//! ```
//! use gubpi_core::{Analyzer, AnalysisOptions};
//! use gubpi_interval::Interval;
//!
//! // A conjugate-style model: uniform prior, one observation.
//! let src = "
//!     let bias = sample in
//!     observe 0.8 from normal(bias, 0.25);
//!     bias";
//! let analyzer = Analyzer::from_source(src, AnalysisOptions::default()).unwrap();
//! let z = analyzer.normalizing_constant();
//! assert!(z.0 <= z.1 && z.0 > 0.0);
//! // Posterior probability that the bias exceeds 1/2.
//! let (lo, hi) = analyzer.posterior_probability(Interval::new(0.5, 1.0));
//! assert!(lo <= hi && hi <= 1.0);
//! assert!(lo > 0.5, "observing 0.8 pulls the posterior above 0.5");
//! ```

mod analyze;
mod histogram;
mod pathbounds;
mod report;

/// The persistent executor subsystem: one long-lived work-stealing
/// worker pool shared across queries and `Analyzer` instances, with the
/// unified deterministic task model (`Task::Path` / `Task::Regions`).
/// Re-exported from the bottom-of-stack `gubpi_pool` crate so the
/// symbolic executor schedules on the same pool.
pub mod pool {
    pub use gubpi_pool::{
        arm_fault_from_env, fault_point, faults_injected, run_jobs_cancellable, run_jobs_with,
        set_fault_plan, CancelToken, FaultKind, FaultPlan, PathJob, PoolStats, SweepProgress, Task,
        Threads, WorkerPool,
    };
}

pub use analyze::{
    AnalysisOptions, Analyzer, CacheStats, Method, QueryError, QueryOutcome, SharedQueryCache,
};
pub use gubpi_analysis::{lint_program, Lint, LintKind, ProgramFacts, RankVerdict, Severity};
pub use gubpi_symbolic::ExecReport;
pub use histogram::{HistogramBounds, NormalizedBin};
pub use pathbounds::{
    bound_path, bound_path_grid_only, bound_path_grid_only_threaded, bound_path_query,
    bound_path_query_threaded, bound_path_threaded, coarse_path_enclosure, grid_splits,
    linear_applicable, plan_path, plan_path_grid_only, plan_path_grid_only_seeded, plan_path_query,
    plan_path_query_seeded, plan_path_seeded, run_adaptive_refinement,
    run_adaptive_refinement_cancellable, tail_substituted, BoundSink, GridRefiner,
    PathBoundOptions, QueryFold, RefineOptions, Region, SingleQuery,
};
pub use pool::{CancelToken, PoolStats, Threads, WorkerPool};
pub use report::render_histogram;
