//! Bounding the denotation of one symbolic interval path (§6.3–6.4),
//! sequentially or on the persistent worker pool.
//!
//! The hard models (pedestrian, random walks) are dominated by a few
//! deep paths, so per-path parallelism alone leaves workers idle. Each
//! path's work — the §6.3 grid's n-dimensional cell space or the §6.4
//! chunk-combination product — is a flat index space of pure region
//! computations, which this module exposes as a *plan*
//! ([`plan_path_query`] / [`plan_path`] / [`plan_path_grid_only`]
//! returning a [`PathJob`] over buffered [`Region`] triples). The
//! unified scheduler (`gubpi_pool::run_jobs_with`) executes the plans
//! of a whole query at once: workers adopt paths, drain their region
//! spaces chunk by chunk, and **steal chunks from still-running
//! dominant paths**, while every buffered contribution is replayed
//! into the caller's sink in (path index, region index) order — so the
//! sink sees exactly the sequential call sequence and every bound
//! stays bit-identical across thread counts and steal schedules.

use std::ops::Range;
use std::sync::Arc;

use gubpi_interval::{next_after_down, next_after_up, pow_up, BoxN, Interval};
use gubpi_polytope::{HPolytope, LinExpr};
use gubpi_symbolic::{note_kernel_cells, KernelSeed, SymPath, SymVal, Tape, LANES};

use gubpi_pool::{run_jobs_cancellable, run_jobs_with, CancelToken, PathJob, Threads, WorkerPool};

/// Where per-region contributions are accumulated.
///
/// For each explored region the path analysis reports a triple
/// `(value_range, lo_mass, hi_mass)`: all traces in the region yield a
/// value in `value_range`; their total weighted measure is at least
/// `lo_mass` (with constraints holding *definitely*) and at most
/// `hi_mass` (constraints holding *possibly*).
pub trait BoundSink {
    /// Records one region's contribution.
    fn add(&mut self, value_range: Interval, lo_mass: f64, hi_mass: f64);
}

/// A sink for a single query `⟦P⟧(U)`.
#[derive(Clone, Debug)]
pub struct SingleQuery {
    /// The query set `U`.
    pub u: Interval,
    /// Accumulated lower bound.
    pub lo: f64,
    /// Accumulated upper bound.
    pub hi: f64,
}

impl SingleQuery {
    /// A fresh query accumulator for `U`.
    pub fn new(u: Interval) -> SingleQuery {
        SingleQuery {
            u,
            lo: 0.0,
            hi: 0.0,
        }
    }
}

impl BoundSink for SingleQuery {
    fn add(&mut self, value_range: Interval, lo_mass: f64, hi_mass: f64) {
        if value_range.subset_of(&self.u) {
            self.lo += lo_mass;
        }
        if value_range.intersects(&self.u) {
            self.hi += hi_mass;
        }
    }
}

/// One buffered region contribution `(value_range, lo_mass, hi_mass)`.
///
/// The scheduler records these per claimed chunk and replays them into
/// the real sink in (path, region) order.
pub type Region = (Interval, f64, f64);

impl BoundSink for Vec<Region> {
    fn add(&mut self, value_range: Interval, lo_mass: f64, hi_mass: f64) {
        self.push((value_range, lo_mass, hi_mass));
    }
}

/// How a plan's [`Region`] stream folds into `(lo, hi)` query bounds.
///
/// The linear semantics in query mode bakes `result ∈ U` into the
/// polytopes, so its masses sum directly; the grid semantics (and
/// sampleless paths) report raw value ranges that the fold must still
/// classify against `U` — exactly what [`SingleQuery`] does.
#[derive(Copy, Clone, Debug)]
pub enum QueryFold {
    /// Sum the masses as-is (membership already folded into the plan).
    Direct,
    /// Classify each region's value range against `U` before summing.
    Filter(Interval),
}

impl QueryFold {
    /// Folds one region into a `(lo, hi)` accumulator.
    #[inline]
    pub fn apply(self, acc: &mut (f64, f64), (v, lo, hi): Region) {
        match self {
            QueryFold::Direct => {
                acc.0 += lo;
                acc.1 += hi;
            }
            QueryFold::Filter(u) => {
                if v.subset_of(&u) {
                    acc.0 += lo;
                }
                if v.intersects(&u) {
                    acc.1 += hi;
                }
            }
        }
    }
}

/// Options for per-path bound computation.
///
/// `Eq`/`Hash` are derived so the analyzer's memo cache can key on the
/// exact option values (every field is integral or boolean).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct PathBoundOptions {
    /// Chunks per boxed linear expression (the paper's "evenly sized
    /// chunks", §6.4) and per grid dimension (§6.3).
    pub splits: usize,
    /// Upper bound on the total number of regions per path; the grid
    /// semantics (§6.3) reduces per-dimension splits and the linear
    /// semantics (§6.4) reduces per-expression chunks to stay below it.
    pub region_budget: usize,
    /// Number of linear expressions boxed simultaneously (Cartesian
    /// product of chunks); beyond this, extra expressions are bounded by
    /// a single LP range.
    pub max_boxed: usize,
    /// Use certified box-subdivision volumes instead of Lasserre's exact
    /// recursion.
    pub certified_volumes: bool,
    /// Box-subdivision budget per volume query when the exact recursion
    /// is not used.
    pub volume_budget: usize,
    /// Largest *coupled* dimension for which the exact Lasserre volume is
    /// used; beyond it, certified box bounds take over.
    pub exact_dim_cap: usize,
    /// Evaluate region sweeps through the compiled interval-tape kernel
    /// (`gubpi_symbolic::kernel`) instead of the tree-walking
    /// interpreter. Bounds are **bit-identical** either way (enforced by
    /// `tests/kernel_differential.rs`); the kernel is only faster. The
    /// default honours the `GUBPI_NO_KERNEL` escape hatch (`repro
    /// --no-kernel`), so field regressions are diagnosable by flipping
    /// one env var.
    pub use_kernel: bool,
    /// Substitute geometric tail enclosures into budget-⊤ paths before
    /// bounding (see [`tail_substituted`]): a ⊤ path carrying a
    /// [`gubpi_symbolic::TailEnclosure`] with per-step contraction
    /// `c_hi < 1` has its trailing `[0, ∞]` score placeholder tightened
    /// to the closed-form geometric remainder `[0, x_hi/(1 − c_hi)]`,
    /// turning the path's `+∞` upper-bound contribution into a finite
    /// one. Sound: the remainder dominates every score the truncated
    /// suffix could still emit. The default honours the `GUBPI_NO_TAIL`
    /// escape hatch (`repro --no-tail`), under which bounds are
    /// bit-identical to the bare-⊤ behaviour.
    pub use_tail: bool,
}

impl Default for PathBoundOptions {
    fn default() -> PathBoundOptions {
        PathBoundOptions {
            splits: 32,
            region_budget: 100_000,
            max_boxed: 2,
            certified_volumes: false,
            volume_budget: 4_000,
            exact_dim_cap: 7,
            use_kernel: !kernel_disabled(std::env::var("GUBPI_NO_KERNEL").ok().as_deref()),
            use_tail: !tail_disabled(std::env::var("GUBPI_NO_TAIL").ok().as_deref()),
        }
    }
}

/// Does a `GUBPI_NO_KERNEL` value disable the compiled kernel? Any
/// non-empty value other than `"0"` counts as "disable".
fn kernel_disabled(value: Option<&str>) -> bool {
    matches!(value, Some(v) if !v.is_empty() && v != "0")
}

/// Does a `GUBPI_NO_TAIL` value disable tail substitution? Same
/// convention as `GUBPI_NO_KERNEL`: any non-empty value other than
/// `"0"` counts as "disable".
fn tail_disabled(value: Option<&str>) -> bool {
    matches!(value, Some(v) if !v.is_empty() && v != "0")
}

/// The tail-substituted variant of a budget-⊤ path, when the geometric
/// enclosure applies — `None` means "bound the path as-is".
///
/// A ⊤ path's score list ends with the `[0, ∞]` placeholder the
/// executor pushes when it cuts a subtree, which drags every upper
/// bound the path touches to `+∞`. When the path carries a
/// [`gubpi_symbolic::TailEnclosure`] — per-unfolding contraction
/// `c = [0, c_hi]` and continuation factor `x = [0, x_hi]` from the
/// static analysis — the total score mass of the truncated suffix is
/// dominated by the geometric series `Σ_{j≥0} x·c_hi^j =
/// x_hi/(1 − c_hi)`, so the placeholder tightens to
/// `[0, x_hi/(1 − c_hi)]`. The quotient is outward-rounded
/// (denominator down, quotient up) so the closed form stays sound
/// under f64.
///
/// At the `c = 1` boundary — score-free and data-guarded loops — the
/// series diverges, and the plain enclosure is unusable. When the
/// ranking pass attached an eventually-geometric prefix
/// ([`gubpi_symbolic::TailPrefix`]: decay starts by unfolding `k₀` at
/// rate `c_eff`, prefix terminations carry weight ≤ `w_prefix`), the
/// placeholder instead tightens to the **two-phase** closed form
///
/// ```text
/// x_hi · (w_hi + c_eff^{max(0, k₀ − k_explored)} / (1 − c_eff))
/// ```
///
/// computed with outward rounding throughout (power up via
/// [`pow_up`], denominator down, products and sums up). The plain
/// geometric case is mathematically its `k₀ = 0`, `w = 0`
/// specialization, but keeps its own literal code path so plain-fact
/// bounds stay bit-identical to the pre-ranking formula.
///
/// Returns `None` when tails are disabled (`opts.use_tail`), the path
/// is not budget-truncated, no enclosure was attached, or `c_hi ≥ 1`
/// with no (usable) prefix component — such paths keep the bare ⊤
/// rather than divide by zero.
pub fn tail_substituted(path: &SymPath, opts: &PathBoundOptions) -> Option<SymPath> {
    if !opts.use_tail || !path.budget_truncated {
        return None;
    }
    let t = path.tail?;
    let c_hi = t.per_step_weight.hi();
    let x_hi = t.continuation_weight.hi();
    if !x_hi.is_finite() || x_hi < 0.0 {
        return None;
    }
    // The half-open range also rejects a NaN contraction estimate.
    let bound = if (0.0..1.0).contains(&c_hi) {
        // Plain geometric remainder (the PR 7 formula, verbatim).
        let denom = next_after_down(1.0 - c_hi);
        if denom <= 0.0 {
            return None;
        }
        next_after_up(x_hi / denom)
    } else {
        // Eventually geometric: the certificate splits the suffix into
        // a prefix phase (mass ≤ w_hi) and a decay phase discounted by
        // the prefix steps the cut has not yet explored.
        let p = t.prefix?;
        let r_hi = p.rate.hi();
        let w_hi = p.prefix_weight.hi();
        if !(0.0..1.0).contains(&r_hi) || !w_hi.is_finite() || w_hi < 0.0 {
            return None;
        }
        let denom = next_after_down(1.0 - r_hi);
        if denom <= 0.0 {
            return None;
        }
        let remaining = p.prefix_bound.saturating_sub(t.unfoldings_explored);
        let decay = next_after_up(pow_up(r_hi, remaining) / denom);
        next_after_up(x_hi * next_after_up(w_hi + decay))
    };
    let mut out = path.clone();
    let last = out
        .scores
        .last_mut()
        .expect("⊤ paths end with the placeholder score");
    debug_assert!(
        matches!(**last, SymVal::Interval(iv) if iv == Interval::NON_NEG),
        "budget-⊤ paths push the [0, ∞] placeholder last"
    );
    *last = Arc::new(SymVal::Interval(Interval::new(0.0, bound)));
    Some(out)
}

// --------------------------------------------------------------------
// Plans: each path as a schedulable region sweep
// --------------------------------------------------------------------

/// Plans the bounding of `⟦Ψ⟧(U)` for one path, together with the fold
/// that turns its region stream into `(lo, hi)`.
///
/// For linear paths the query set `U` is folded into the polytopes
/// (the 𝔓_lb / 𝔓_ub of §6.4), which avoids any boundary slack: the
/// membership test becomes part of the volume computation (hence
/// [`QueryFold::Direct`]).
pub fn plan_path_query(
    path: &SymPath,
    u: Interval,
    opts: PathBoundOptions,
) -> (PathJob<'_, Region>, QueryFold) {
    plan_path_query_seeded(path, u, opts, None)
}

/// [`plan_path_query`] with an optional per-program [`KernelSeed`]: the
/// grid tapes compile from the pre-interned static constant pool and
/// the static constraint order instead of re-deriving both per query.
/// Bounds are bit-identical with and without a seed.
pub fn plan_path_query_seeded<'a>(
    path: &'a SymPath,
    u: Interval,
    opts: PathBoundOptions,
    seed: Option<&KernelSeed>,
) -> (PathJob<'a, Region>, QueryFold) {
    if path.n_samples == 0 {
        (plan_sampleless(path, opts, seed), QueryFold::Filter(u))
    } else if linear_applicable(path) {
        (
            plan_linear(path, opts, ResultMode::Query(u)),
            QueryFold::Direct,
        )
    } else {
        (plan_grid(path, opts, seed), QueryFold::Filter(u))
    }
}

/// Plans the full region stream of one path for histogram-shaped sinks.
///
/// Dispatches to the linear semantics when the path's constraints and
/// result are interval-linear (§6.4), otherwise to the standard grid
/// semantics (§6.3).
pub fn plan_path(path: &SymPath, opts: PathBoundOptions) -> PathJob<'_, Region> {
    plan_path_seeded(path, opts, None)
}

/// [`plan_path`] with an optional per-program [`KernelSeed`] (see
/// [`plan_path_query_seeded`]).
pub fn plan_path_seeded<'a>(
    path: &'a SymPath,
    opts: PathBoundOptions,
    seed: Option<&KernelSeed>,
) -> PathJob<'a, Region> {
    if path.n_samples == 0 {
        plan_sampleless(path, opts, seed)
    } else if linear_applicable(path) {
        plan_linear(path, opts, ResultMode::Boxed)
    } else {
        plan_grid(path, opts, seed)
    }
}

/// Like [`plan_path`] but always uses the grid semantics — the §6.3 vs
/// §6.4 ablation baseline.
pub fn plan_path_grid_only(path: &SymPath, opts: PathBoundOptions) -> PathJob<'_, Region> {
    plan_path_grid_only_seeded(path, opts, None)
}

/// [`plan_path_grid_only`] with an optional per-program [`KernelSeed`]
/// (see [`plan_path_query_seeded`]).
pub fn plan_path_grid_only_seeded<'a>(
    path: &'a SymPath,
    opts: PathBoundOptions,
    seed: Option<&KernelSeed>,
) -> PathJob<'a, Region> {
    if path.n_samples == 0 {
        plan_sampleless(path, opts, seed)
    } else {
        plan_grid(path, opts, seed)
    }
}

// --------------------------------------------------------------------
// Direct (single-path) entry points on top of the plans
// --------------------------------------------------------------------

/// Bounds `⟦Ψ⟧(U)` for one path directly, on the calling thread.
pub fn bound_path_query(path: &SymPath, u: Interval, opts: PathBoundOptions) -> (f64, f64) {
    bound_path_query_threaded(path, u, opts, Threads::Off)
}

/// [`bound_path_query`] with the path's regions (grid cells / chunk
/// combinations) bounded on the persistent pool at width `threads`.
/// Bit-identical to the sequential result for every `threads` value.
pub fn bound_path_query_threaded(
    path: &SymPath,
    u: Interval,
    opts: PathBoundOptions,
    threads: Threads,
) -> (f64, f64) {
    let tailed = tail_substituted(path, &opts);
    let path = tailed.as_ref().unwrap_or(path);
    let (job, fold) = plan_path_query(path, u, opts);
    let mut acc = (0.0, 0.0);
    run_jobs_with(
        WorkerPool::global(),
        threads.worker_count(usize::MAX),
        vec![job],
        |_, region| fold.apply(&mut acc, region),
    );
    acc
}

/// Bounds `⟦Ψ⟧` for one path, feeding regions into the sink.
pub fn bound_path(path: &SymPath, opts: PathBoundOptions, sink: &mut impl BoundSink) {
    bound_path_threaded(path, opts, Threads::Off, sink);
}

/// [`bound_path`] with region-level parallelism on the persistent pool;
/// the sink receives the region contributions in the sequential order
/// regardless of the thread count.
pub fn bound_path_threaded(
    path: &SymPath,
    opts: PathBoundOptions,
    threads: Threads,
    sink: &mut impl BoundSink,
) {
    let tailed = tail_substituted(path, &opts);
    let path = tailed.as_ref().unwrap_or(path);
    run_jobs_with(
        WorkerPool::global(),
        threads.worker_count(usize::MAX),
        vec![plan_path(path, opts)],
        |_, (v, lo, hi)| sink.add(v, lo, hi),
    );
}

/// Like [`bound_path`] but always uses the grid semantics.
pub fn bound_path_grid_only(path: &SymPath, opts: PathBoundOptions, sink: &mut impl BoundSink) {
    bound_path_grid_only_threaded(path, opts, Threads::Off, sink);
}

/// [`bound_path_grid_only`] with region-level parallelism on the
/// persistent pool.
pub fn bound_path_grid_only_threaded(
    path: &SymPath,
    opts: PathBoundOptions,
    threads: Threads,
    sink: &mut impl BoundSink,
) {
    let tailed = tail_substituted(path, &opts);
    let path = tailed.as_ref().unwrap_or(path);
    run_jobs_with(
        WorkerPool::global(),
        threads.worker_count(usize::MAX),
        vec![plan_path_grid_only(path, opts)],
        |_, (v, lo, hi)| sink.add(v, lo, hi),
    );
}

/// Is the linear semantics applicable (linear constraints and result)?
pub fn linear_applicable(path: &SymPath) -> bool {
    let n = path.n_samples;
    path.result.linear_form(n).is_some()
        && path
            .constraints
            .iter()
            .all(|c| c.value.linear_form(n).is_some())
}

/// Paths without samples: a single region of measure 1, precomputed at
/// plan time (nothing to schedule).
///
/// With the kernel enabled this is **one** fused tape evaluation over
/// the empty box; the interpreter preamble used to walk the constraint
/// trees twice (∃ then ∀) and the weight and result trees separately.
fn plan_sampleless(
    path: &SymPath,
    opts: PathBoundOptions,
    seed: Option<&KernelSeed>,
) -> PathJob<'static, Region> {
    let mut buf: Vec<Region> = Vec::new();
    if opts.use_kernel {
        let tape = Tape::for_path_seeded(path, seed);
        note_kernel_cells(1);
        if let Some(cell) = tape.eval_cell(&[], &mut tape.scratch()) {
            let lo = if cell.definite { cell.weight.lo() } else { 0.0 };
            buf.add(cell.value, lo, cell.weight.hi());
        }
    } else {
        let empty = BoxN::empty();
        let def = path.constraints_on_box(&empty, true);
        let pos = path.constraints_on_box(&empty, false);
        if pos {
            let w = path.weight_range_over_box(&empty);
            let v = path.result.range_over_box(&empty);
            buf.add(v, if def { w.lo() } else { 0.0 }, w.hi());
        }
    }
    PathJob::Ready(buf)
}

/// Incremental mixed-radix decoding of a flat region index: digit `d`
/// cycles fastest through `radix(d)` values. Replaces the per-region
/// `div`/`mod` chain — one division chain seeds the start of a chunk,
/// then every step is a carry walk.
struct Odometer {
    digits: Vec<usize>,
}

impl Odometer {
    /// Digits of `index` in the mixed radix given by `radix(d)`.
    fn at(n: usize, mut index: usize, radix: impl Fn(usize) -> usize) -> Odometer {
        let digits = (0..n)
            .map(|d| {
                let r = radix(d);
                let digit = index % r;
                index /= r;
                digit
            })
            .collect();
        Odometer { digits }
    }

    /// Advances to the next index (digit 0 fastest).
    fn step(&mut self, radix: impl Fn(usize) -> usize) {
        for (d, digit) in self.digits.iter_mut().enumerate() {
            *digit += 1;
            if *digit < radix(d) {
                return;
            }
            *digit = 0;
        }
    }
}

/// Per-region cost of a tree-walking sweep: the op applications all
/// four walks perform per cell (`SymVal::prim_op_count`, the same
/// counter behind the kernel's pre-CSE `tree_nodes` baseline).
fn tree_walk_cost(path: &SymPath) -> u64 {
    let constraint_ops: u64 = path
        .constraints
        .iter()
        .map(|c| c.value.prim_op_count())
        .sum();
    let score_ops: u64 = path.scores.iter().map(|w| w.prim_op_count()).sum();
    // ∃ + ∀ over the constraints, one weight walk, one result walk.
    2 * constraint_ops + score_ops + path.result.prim_op_count() + 1
}

// --------------------------------------------------------------------
// Standard interval trace semantics on a path (§6.3)
// --------------------------------------------------------------------

/// The per-dimension split count for an `n`-dimensional grid under a
/// region budget: the largest `k ≤ splits` with `k == 1` or
/// `k^n ≤ budget`, decided in **exact integer arithmetic**.
///
/// Invariants (regression-tested at the budget boundary): the result is
/// always ≥ 1, and whenever it exceeds 1 its `n`-th power fits the
/// budget exactly — the old `f64::powi` comparison could misclassify
/// `k^n` near the boundary once the power left the 2⁵³ exact-integer
/// range.
pub fn grid_splits(splits: usize, n: usize, budget: usize) -> usize {
    let fits = |k: usize| -> bool {
        let mut acc: u128 = 1;
        for _ in 0..n {
            acc = acc.saturating_mul(k as u128);
            if acc > budget as u128 {
                return false;
            }
        }
        true
    };
    let splits = splits.max(1);
    if fits(splits) {
        return splits;
    }
    // Binary search the largest fitting k in [1, splits); `fits` is
    // monotone in k, and fits(1) always holds.
    let (mut lo, mut hi) = (1usize, splits);
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Grid splitting of `[0,1]^n`: every cell is checked against `Δ`
/// (∀ for the lower, ∃ for the upper bound), weighted by the interval
/// product of `Ξ`, and reported with the result range.
///
/// Cells are indexed linearly (dimension 0 fastest) so the index space
/// can be carved into contiguous chunks by the scheduler; chunk buffers
/// are replayed in index order, reproducing the sequential `sink.add`
/// sequence bit for bit.
///
/// With `opts.use_kernel` the path is lowered once into a compiled
/// interval tape and each claimed chunk is evaluated in lane blocks
/// with zero per-cell allocations; cells are decoded by an incremental
/// odometer instead of per-dimension `div`/`mod`. The emitted region
/// stream is bit-identical to the tree-walking interpreter's.
fn plan_grid<'a>(
    path: &'a SymPath,
    opts: PathBoundOptions,
    seed: Option<&KernelSeed>,
) -> PathJob<'a, Region> {
    let n = path.n_samples;
    let k = grid_splits(opts.splits, n, opts.region_budget);
    // Every dimension splits the same [0, 1], so one edge vector serves
    // all of them.
    let cell_edges: Vec<Interval> = Interval::UNIT.split(k);
    // k^n ≤ region_budget ≤ usize::MAX whenever k > 1, and 1 otherwise.
    let total = k.pow(n as u32);
    if !opts.use_kernel {
        return PathJob::Sweep {
            total,
            cost: tree_walk_cost(path),
            process: Box::new(move |range: Range<usize>, buf| {
                let mut odo = Odometer::at(n, range.start, |_| k);
                for _ in range {
                    let cell: BoxN = (0..n).map(|d| cell_edges[odo.digits[d]]).collect();
                    process_region(path, &cell, buf);
                    odo.step(|_| k);
                }
            }),
        };
    }

    let tape = Tape::for_path_seeded(path, seed);
    let cost = tape.cost();
    // Cell widths mirror `BoxN::volume`'s per-dimension factors; the
    // product below multiplies them in dimension order starting from
    // 1.0, exactly like `Iterator::product` over `Interval::width`.
    let edge_widths: Vec<f64> = cell_edges.iter().map(Interval::width).collect();
    let process = move |range: Range<usize>, buf: &mut Vec<Region>| {
        note_kernel_cells(range.len() as u64);
        let mut scratch = tape.scratch();
        let mut odo = Odometer::at(n, range.start, |_| k);
        let mut vols = [0.0f64; LANES];
        let mut idx = range.start;
        while idx < range.end {
            let lanes = LANES.min(range.end - idx);
            for (lane, vol_slot) in vols.iter_mut().enumerate().take(lanes) {
                let mut vol = 1.0;
                for (d, &e) in odo.digits.iter().enumerate() {
                    scratch.set_input(d, lane, cell_edges[e]);
                    vol *= edge_widths[e];
                }
                *vol_slot = vol;
                odo.step(|_| k);
            }
            if tape.eval_block(&mut scratch, lanes) {
                for (lane, &vol) in vols.iter().enumerate().take(lanes) {
                    if let Some(cell) = scratch.lane(lane) {
                        let lo = if cell.definite {
                            vol * cell.weight.lo()
                        } else {
                            0.0
                        };
                        buf.push((cell.value, lo, vol * cell.weight.hi()));
                    }
                }
            }
            idx += lanes;
        }
    };
    PathJob::Sweep {
        total,
        cost,
        process: Box::new(process),
    }
}

fn process_region(path: &SymPath, cell: &BoxN, sink: &mut impl BoundSink) {
    if !path.constraints_on_box(cell, false) {
        return; // definitely outside
    }
    let vol = cell.volume();
    let w = path.weight_range_over_box(cell);
    let v = path.result.range_over_box(cell);
    let definite = path.constraints_on_box(cell, true);
    let lo = if definite { vol * w.lo() } else { 0.0 };
    sink.add(v, lo, vol * w.hi());
}

/// The path's coarsest sound grid-semantics enclosure: one evaluation
/// of the whole sample box `[0,1]^n`. `None` means the path's
/// constraints definitely exclude the entire box, i.e. the path
/// contributes nothing. This is the anytime fallback for regions a
/// cancelled sweep never reached — every sub-cell's true contribution
/// is contained in its share of this region by inclusion monotonicity.
pub fn coarse_path_enclosure(path: &SymPath) -> Option<Region> {
    let cell: BoxN = (0..path.n_samples).map(|_| Interval::UNIT).collect();
    let mut out: Vec<Region> = Vec::with_capacity(1);
    process_region(path, &cell, &mut out);
    out.pop()
}

// --------------------------------------------------------------------
// Linear interval trace semantics (§6.4, Appendix E.1)
// --------------------------------------------------------------------

/// How the result value participates in the linear analysis.
enum ResultMode {
    /// Box the result as one of the chunked linear expressions; regions
    /// are emitted with their value range (histogram sinks).
    Boxed,
    /// Fold `result ∈ U` into the polytopes (`𝔓_lb`/`𝔓_ub` of §6.4):
    /// membership is decided by the volume computation itself.
    Query(Interval),
}

fn plan_linear(path: &SymPath, opts: PathBoundOptions, mode: ResultMode) -> PathJob<'_, Region> {
    let n = path.n_samples;
    let nothing = || PathJob::Ready(Vec::new());

    // 𝔓_lb: constraints hold for *all* refinements of interval parts;
    // 𝔓_ub: for *some* refinement.
    let mut p_lb = HPolytope::unit_cube(n);
    let mut p_ub = HPolytope::unit_cube(n);
    for c in &path.constraints {
        let (lin, iv) = c.value.linear_form(n).expect("checked by caller");
        use gubpi_symbolic::CmpDir::*;
        match c.dir {
            // lin + iv ≤ 0
            LeZero => {
                if iv.hi().is_finite() {
                    p_lb.add_le_zero(&(&lin + &LinExpr::constant(n, iv.hi())));
                } else {
                    // Never definitely ≤ 0: empty lower region.
                    p_lb.add_constraint(vec![0.0; n], -1.0);
                }
                if iv.lo().is_finite() {
                    p_ub.add_le_zero(&(&lin + &LinExpr::constant(n, iv.lo())));
                }
                // iv.lo = −∞ ⇒ possibly ≤ 0 everywhere: no cut.
            }
            // lin + iv > 0 (closed to ≥ 0; boundary has measure zero)
            GtZero => {
                if iv.lo().is_finite() {
                    p_lb.add_ge_zero(&(&lin + &LinExpr::constant(n, iv.lo())));
                } else {
                    p_lb.add_constraint(vec![0.0; n], -1.0);
                }
                if iv.hi().is_finite() {
                    p_ub.add_ge_zero(&(&lin + &LinExpr::constant(n, iv.hi())));
                }
            }
        }
    }

    // Fold the query into the polytopes / decide how the result reports.
    let (res_lin, res_iv) = path.result.linear_form(n).expect("checked by caller");
    let mut result_boxed = false;
    let mut const_value_range = Interval::point(res_lin.constant_term()) + res_iv;
    let mut const_in_lo = true;
    let mut const_in_hi = true;
    match mode {
        ResultMode::Boxed => {
            result_boxed = !res_lin.is_constant();
        }
        ResultMode::Query(u) => {
            if res_lin.is_constant() {
                // Classify once: all traces share the value range.
                const_in_lo = const_value_range.subset_of(&u);
                const_in_hi = const_value_range.intersects(&u);
                if !const_in_hi {
                    return nothing();
                }
            } else {
                // V ⊆ U for the lower bound:
                //   lin + iv.hi ≤ u.hi  ∧  lin + iv.lo ≥ u.lo
                if u.hi().is_finite() {
                    if res_iv.hi().is_finite() {
                        p_lb.add_le_zero(&(&res_lin + &LinExpr::constant(n, res_iv.hi() - u.hi())));
                    } else {
                        p_lb.add_constraint(vec![0.0; n], -1.0);
                    }
                }
                if u.lo().is_finite() {
                    if res_iv.lo().is_finite() {
                        p_lb.add_ge_zero(&(&res_lin + &LinExpr::constant(n, res_iv.lo() - u.lo())));
                    } else {
                        p_lb.add_constraint(vec![0.0; n], -1.0);
                    }
                }
                // V ∩ U ≠ ∅ for the upper bound:
                //   lin + iv.lo ≤ u.hi  ∧  lin + iv.hi ≥ u.lo
                if u.hi().is_finite() && res_iv.lo().is_finite() {
                    p_ub.add_le_zero(&(&res_lin + &LinExpr::constant(n, res_iv.lo() - u.hi())));
                }
                if u.lo().is_finite() && res_iv.hi().is_finite() {
                    p_ub.add_ge_zero(&(&res_lin + &LinExpr::constant(n, res_iv.hi() - u.lo())));
                }
                // Report the full possible value range; the query fold
                // is Direct, so the range is never consulted.
                const_value_range = Interval::REAL;
            }
        }
    }
    if p_ub.is_empty() {
        return nothing();
    }

    // Boxed expressions: the result (when boxed) first, then the linear
    // parts of every score decomposition (Appendix E.1). Identical
    // expressions share one boxed slot.
    let mut boxed: Vec<LinExpr> = Vec::new();
    if result_boxed {
        boxed.push(res_lin.clone());
    }
    let decomps: Vec<_> = path
        .scores
        .iter()
        .map(|w| w.linear_decomposition(n))
        .collect();
    // Map each score part to either a boxed index or a fixed LP range:
    // `part_source[s][p] = Ok(boxed_idx) | Err(fixed_range)`.
    let mut part_source: Vec<Vec<Result<usize, Interval>>> = Vec::new();
    for d in &decomps {
        let mut row = Vec::new();
        for (lin, iv) in &d.parts {
            if let Some(k) = boxed.iter().position(|b| b == lin) {
                row.push(Ok(k));
            } else if boxed.len() < opts.max_boxed {
                boxed.push(lin.clone());
                row.push(Ok(boxed.len() - 1));
            } else {
                let base = p_ub.range_of(lin).unwrap_or(Interval::REAL);
                row.push(Err(base + *iv));
            }
        }
        part_source.push(row);
    }

    // Ranges of the boxed expressions over 𝔓_ub, split into chunks.
    // The per-expression chunk count honours the region budget exactly
    // like the grid does: `region_budget` is documented as the cap on
    // regions *per path*, and bounding it here also keeps the linear
    // combination count below `usize::MAX` — a raw `splits^boxed`
    // product could overflow the flat index space and silently skip
    // combinations, i.e. report unsound upper bounds.
    let per_expr_chunks = grid_splits(opts.splits, boxed.len(), opts.region_budget);
    let mut chunkings: Vec<Vec<Interval>> = Vec::new();
    for lin in &boxed {
        let range = match p_ub.range_of(lin) {
            Some(r) if r.is_finite() => r,
            _ => return nothing(),
        };
        if range.width() == 0.0 {
            chunkings.push(vec![range]);
        } else {
            chunkings.push(range.split(per_expr_chunks));
        }
    }

    let exact_cap = if opts.certified_volumes {
        0
    } else {
        opts.exact_dim_cap
    };

    // Score-decomposition skeletons compiled to value tapes: the combo
    // loop below evaluates each skeleton once per combination, and the
    // tree walk (with its per-`Prim` argument vectors) is the only
    // allocating part of that loop. Bit-identical to
    // `eval_with_part_ranges` (same DAG, same `eval_interval` calls).
    let skel_tapes: Option<Vec<Tape>> = opts.use_kernel.then(|| {
        decomps
            .iter()
            .map(|d| Tape::for_value(d.parts.len(), &d.skeleton))
            .collect()
    });

    // Cartesian sweep over chunk combinations, addressed by a linear
    // mixed-radix index (expression 0 fastest) so the combination space
    // can be chunk-partitioned across workers; chunks are decoded by an
    // incremental odometer. Each combination's work is pure; chunk
    // buffers replayed in index order reproduce the sequential emit
    // sequence exactly. The product cannot overflow: every chunking has
    // ≤ per_expr_chunks entries, whose boxed-count power grid_splits
    // bounded by the region budget.
    let total: usize = chunkings.iter().map(Vec::len).product();
    // Per-combination cost estimate (seeds the adaptive chunk width):
    // two polytope clones, the chunk clips, an LP feasibility check and
    // the volume bounds all scale with the dimension and constraint
    // count. A pure function of the plan, like the grid's tape cost.
    let cost = 64 * (n as u64 + 1) * (path.constraints.len() as u64 + boxed.len() as u64 + 1);
    let eval_range = move |range: Range<usize>, buf: &mut Vec<Region>| {
        let radix = |d: usize| chunkings[d].len();
        let mut odo = Odometer::at(chunkings.len(), range.start, radix);
        let mut chunks = vec![Interval::ZERO; chunkings.len()];
        let mut part_ranges: Vec<Interval> = Vec::new();
        let mut scratches: Vec<_> = skel_tapes
            .as_deref()
            .unwrap_or_default()
            .iter()
            .map(Tape::scratch)
            .collect();
        for _ in range {
            for (ch, (chunking, &digit)) in chunks.iter_mut().zip(chunkings.iter().zip(&odo.digits))
            {
                *ch = chunking[digit];
            }
            odo.step(radix);

            // Clip both polytopes to the chunks.
            let mut q_lb = p_lb.clone();
            let mut q_ub = p_ub.clone();
            for (lin, ch) in boxed.iter().zip(&chunks) {
                // ch.lo ≤ lin ≤ ch.hi
                let upper = &(lin.clone()) + &LinExpr::constant(n, -ch.hi());
                let lower = &(lin.clone()) + &LinExpr::constant(n, -ch.lo());
                q_lb.add_le_zero(&upper);
                q_lb.add_ge_zero(&lower);
                q_ub.add_le_zero(&upper);
                q_ub.add_ge_zero(&lower);
            }

            // One LP feasibility check prunes most chunk combinations
            // (the boxed expressions co-vary, so the Cartesian grid is
            // sparse); q_lb ⊆ q_ub, so an empty q_ub kills both volumes.
            if q_ub.is_empty() {
                continue;
            }
            let (vol_lb, _) = q_lb.volume_range(exact_cap, opts.volume_budget);
            let (_, vol_ub) = q_ub.volume_range(exact_cap, opts.volume_budget);

            if vol_ub > 0.0 || vol_lb > 0.0 {
                // Weight interval: product over scores of the skeleton
                // evaluated with each part pinned to its chunk (+
                // interval slack) or fixed LP range.
                let mut w = Interval::ONE;
                for (s, d) in decomps.iter().enumerate() {
                    part_ranges.clear();
                    part_ranges.extend(d.parts.iter().enumerate().map(|(pi, (_, iv))| {
                        match part_source[s][pi] {
                            Ok(bi) => chunks[bi] + *iv,
                            Err(fixed) => fixed,
                        }
                    }));
                    let factor = match &skel_tapes {
                        Some(tapes) => tapes[s].eval_value(&part_ranges, &mut scratches[s]),
                        None => d.eval_with_part_ranges(&part_ranges),
                    };
                    w = w * factor.clamp_non_neg();
                }
                let value_range = if result_boxed {
                    chunks[0] + res_iv
                } else {
                    const_value_range
                };
                let lo_mass = if const_in_lo { vol_lb * w.lo() } else { 0.0 };
                let hi_mass = if const_in_hi { vol_ub * w.hi() } else { 0.0 };
                buf.push((value_range, lo_mass, hi_mass));
            }
        }
    };

    PathJob::Sweep {
        total,
        cost,
        process: Box::new(eval_range),
    }
}

// --------------------------------------------------------------------
// Gap-driven adaptive region refinement
// --------------------------------------------------------------------

/// Does a `GUBPI_NO_REFINE` value disable adaptive refinement? Same
/// convention as `GUBPI_NO_KERNEL`: any non-empty value other than
/// `"0"` counts as "disable".
fn refine_disabled(value: Option<&str>) -> bool {
    matches!(value, Some(v) if !v.is_empty() && v != "0")
}

/// Options for gap-driven adaptive refinement (kept separate from
/// [`PathBoundOptions`], which must stay float-free for `Eq`/`Hash`;
/// the analyzer folds these into its cache key via `f64::to_bits`).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RefineOptions {
    /// Refine grid-destined paths adaptively instead of sweeping the
    /// full uniform grid. The default honours the `GUBPI_NO_REFINE`
    /// escape hatch (`repro --no-refine`), under which every query is
    /// bit-identical to the uniform sweep.
    pub refine: bool,
    /// Stop refining once the summed (upper − lower) gap of all
    /// refined paths in a query drops to this value; `0.0` (the
    /// default) means "spend the whole cell budget". Overridable via
    /// `GUBPI_GAP_TARGET` / `repro --gap-target`.
    pub gap_target: f64,
    /// Maximum bisection depth below the seed grid; cells at this
    /// depth settle instead of re-entering the worklist.
    pub max_refine_depth: u32,
}

impl Default for RefineOptions {
    fn default() -> RefineOptions {
        RefineOptions {
            refine: !refine_disabled(std::env::var("GUBPI_NO_REFINE").ok().as_deref()),
            gap_target: std::env::var("GUBPI_GAP_TARGET")
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|g| g.is_finite() && *g >= 0.0)
                .unwrap_or(0.0),
            max_refine_depth: 12,
        }
    }
}

/// A region's contribution to the query's (upper − lower) gap, folded
/// the same way the bounds themselves are: under [`QueryFold::Filter`]
/// a cell only contributes its `hi` mass while its value range still
/// intersects `U`, and only its `lo` mass while the range is contained
/// in `U`. `NaN` (`∞ − ∞`) settles as `0.0` so an all-⊤ path cannot
/// wedge the worklist.
fn gap_score(fold: QueryFold, (v, lo, hi): Region) -> f64 {
    let score = match fold {
        QueryFold::Direct => hi - lo,
        QueryFold::Filter(u) => {
            let hi_in = if v.intersects(&u) { hi } else { 0.0 };
            let lo_in = if v.subset_of(&u) { lo } else { 0.0 };
            hi_in - lo_in
        }
    };
    if score.is_nan() {
        0.0
    } else {
        score
    }
}

/// A refinable cell on the worklist: its gap contribution, the
/// canonical sequence number that breaks score ties (assigned in
/// evaluation order, which is itself deterministic), its bisection
/// depth, the box, and the region triple it currently contributes.
struct Leaf {
    score: f64,
    seq: u64,
    depth: u32,
    cell: BoxN,
    region: Region,
}

/// Gap-driven adaptive refinement of one grid-destined path (§6.3
/// semantics, adaptively subdivided).
///
/// Instead of sweeping the uniform `k^n` grid, the refiner seeds a
/// coarse grid, scores every evaluated cell by its gap contribution
/// ([`gap_score`]), and repeatedly bisects the widest dimension of the
/// worst cells until the query's gap target, the cell budget (the
/// **same** `k^n` the uniform sweep would have spent), or the maximum
/// depth is reached. Soundness: the two children of a bisection
/// partition the parent box exactly, and interval evaluation is
/// inclusion-monotone, so every round only tightens the path's bounds
/// — the refined result is always contained in the uniform sweep's.
///
/// # Determinism
///
/// All selection, scoring and integration run on the caller's thread;
/// workers only evaluate batches of cells whose results are replayed
/// in canonical index order (the same `(path, region)` replay as the
/// uniform sweep). The priority order is total — score descending via
/// `f64::total_cmp`, then canonical sequence number ascending — so the
/// refinement tree, and therefore every reported bound, is
/// **bit-identical across thread counts and steal schedules**.
pub struct GridRefiner<'a> {
    path: &'a SymPath,
    tape: Option<Tape>,
    fold: QueryFold,
    max_depth: u32,
    budget: usize,
    used: usize,
    settled: (f64, f64),
    settled_gap: f64,
    frontier: Vec<Leaf>,
    pending: Vec<BoxN>,
    pending_depth: Vec<u32>,
    next_seq: u64,
    splits: u64,
    done: bool,
    interrupted: bool,
}

impl<'a> GridRefiner<'a> {
    /// A refiner for one grid-destined path, or `None` when refinement
    /// is disabled, the path has no sample space, or the uniform grid
    /// is too coarse to subdivide (`k < 4`) — callers fall back to the
    /// uniform sweep in that case. The cell budget is exactly the
    /// uniform sweep's `k^n`, so adaptive and uniform runs at default
    /// options spend the same number of cell evaluations.
    pub fn new(
        path: &'a SymPath,
        fold: QueryFold,
        opts: PathBoundOptions,
        refine: &RefineOptions,
        seed: Option<&KernelSeed>,
    ) -> Option<GridRefiner<'a>> {
        if !refine.refine || path.n_samples == 0 {
            return None;
        }
        let n = path.n_samples;
        let k = grid_splits(opts.splits, n, opts.region_budget);
        if k < 4 {
            return None;
        }
        let budget = k.pow(n as u32);
        // Seed coarsely — a quarter of the per-dimension resolution,
        // capped to keep high-dimensional seeds from eating the budget
        // — and leave the rest of the budget to adaptive bisection.
        let k0 = grid_splits((k / 4).clamp(2, 8), n, (budget / 4).max(1));
        let cell_edges: Vec<Interval> = Interval::UNIT.split(k0);
        let total = k0.pow(n as u32);
        let mut pending: Vec<BoxN> = Vec::with_capacity(total);
        let mut odo = Odometer::at(n, 0, |_| k0);
        for _ in 0..total {
            pending.push((0..n).map(|d| cell_edges[odo.digits[d]]).collect());
            odo.step(|_| k0);
        }
        Some(GridRefiner {
            path,
            tape: opts.use_kernel.then(|| Tape::for_path_seeded(path, seed)),
            fold,
            max_depth: refine.max_refine_depth,
            budget,
            used: 0,
            settled: (0.0, 0.0),
            settled_gap: 0.0,
            frontier: Vec::new(),
            pending_depth: vec![0; total],
            pending,
            next_seq: 0,
            splits: 0,
            done: false,
            interrupted: false,
        })
    }

    /// Moves the next batch of cells from the worklist into `pending`,
    /// returning whether this refiner has cells to evaluate this
    /// round. Pop count scales with the worklist (a quarter of the
    /// positive-score prefix, at least 8) so the shape of the
    /// refinement tree is driven by the gap landscape; the remaining
    /// cell budget only truncates it, which keeps refinement trees at
    /// different budgets nested prefixes of each other.
    fn select_batch(&mut self) -> bool {
        if !self.pending.is_empty() {
            return true; // round 0: the seed grid is already pending
        }
        if self.done {
            return false;
        }
        let remaining = self.budget.saturating_sub(self.used);
        if remaining < 2 || self.frontier.is_empty() {
            self.done = true;
            return false;
        }
        self.frontier
            .sort_by(|a, b| b.score.total_cmp(&a.score).then(a.seq.cmp(&b.seq)));
        let positive = self.frontier.iter().take_while(|l| l.score > 0.0).count();
        if positive == 0 {
            self.done = true;
            return false;
        }
        let pops = positive.min(remaining / 2).min((positive / 4).max(8));
        for leaf in self.frontier.drain(..pops) {
            match leaf.cell.bisect_widest() {
                Some((a, b)) => {
                    self.splits += 1;
                    self.pending.push(a);
                    self.pending.push(b);
                    self.pending_depth.push(leaf.depth + 1);
                    self.pending_depth.push(leaf.depth + 1);
                }
                None => {
                    // Degenerate (point) box: nothing left to split.
                    self.fold.apply(&mut self.settled, leaf.region);
                    self.settled_gap += leaf.score;
                }
            }
        }
        !self.pending.is_empty()
    }

    /// The pending batch as a stealable region sweep. Cells are tagged
    /// with their batch index so the (already order-replayed) stream
    /// can be matched back to `pending`; dead cells (excluded by a
    /// constraint ∃-test) are simply absent and settle with zero
    /// contribution.
    fn round_job(&self) -> PathJob<'_, (usize, Region)> {
        if self.pending.is_empty() {
            return PathJob::Ready(Vec::new());
        }
        let boxes = &self.pending;
        match &self.tape {
            Some(tape) => PathJob::Sweep {
                total: boxes.len(),
                cost: tape.cost(),
                process: Box::new(move |range: Range<usize>, buf| {
                    note_kernel_cells(range.len() as u64);
                    let mut scratch = tape.scratch();
                    let slice = &boxes[range.clone()];
                    tape.eval_boxes(&mut scratch, slice, |i, cell| {
                        let vol = slice[i].volume();
                        let lo = if cell.definite {
                            vol * cell.weight.lo()
                        } else {
                            0.0
                        };
                        buf.push((range.start + i, (cell.value, lo, vol * cell.weight.hi())));
                    });
                }),
            },
            None => {
                let path = self.path;
                PathJob::Sweep {
                    total: boxes.len(),
                    cost: tree_walk_cost(path),
                    process: Box::new(move |range: Range<usize>, buf| {
                        for idx in range {
                            let cell = &boxes[idx];
                            if !path.constraints_on_box(cell, false) {
                                continue;
                            }
                            let vol = cell.volume();
                            let w = path.weight_range_over_box(cell);
                            let v = path.result.range_over_box(cell);
                            let definite = path.constraints_on_box(cell, true);
                            let lo = if definite { vol * w.lo() } else { 0.0 };
                            buf.push((idx, (v, lo, vol * w.hi())));
                        }
                    }),
                }
            }
        }
    }

    /// Folds one round's replayed region stream back into the refiner:
    /// refinable cells (positive score, below max depth) join the
    /// worklist, everything else settles into the accumulated bounds.
    fn integrate(&mut self, out: &[(usize, Region)]) {
        self.used += self.pending.len();
        for &(idx, region) in out {
            let score = gap_score(self.fold, region);
            let depth = self.pending_depth[idx];
            if score > 0.0 && depth < self.max_depth {
                self.frontier.push(Leaf {
                    score,
                    seq: self.next_seq + idx as u64,
                    depth,
                    cell: self.pending[idx].clone(),
                    region,
                });
            } else {
                self.fold.apply(&mut self.settled, region);
                self.settled_gap += score;
            }
        }
        self.next_seq += self.pending.len() as u64;
        self.pending.clear();
        self.pending_depth.clear();
    }

    /// [`integrate`](Self::integrate) for a round whose sweep was
    /// cancelled after evaluating only the prefix `pending[..done]`.
    /// Evaluated cells integrate normally (an absent index below `done`
    /// really is a dead cell and contributes nothing); every
    /// unevaluated cell settles conservatively as its volume-share of
    /// the whole-box enclosure, which contains the cell's true
    /// contribution by inclusion monotonicity — so the final bounds
    /// stay sound, merely coarser. Marks the refiner degraded when any
    /// cell had to settle this way.
    fn integrate_interrupted(&mut self, out: &[(usize, Region)], done: usize) {
        let total = self.pending.len();
        let done = done.min(total);
        if done == total {
            self.integrate(out);
            return;
        }
        self.interrupted = true;
        self.used += done;
        for &(idx, region) in out {
            let score = gap_score(self.fold, region);
            let depth = self.pending_depth[idx];
            if score > 0.0 && depth < self.max_depth {
                self.frontier.push(Leaf {
                    score,
                    seq: self.next_seq + idx as u64,
                    depth,
                    cell: self.pending[idx].clone(),
                    region,
                });
            } else {
                self.fold.apply(&mut self.settled, region);
                self.settled_gap += score;
            }
        }
        if let Some((v, _, whole_hi)) = coarse_path_enclosure(self.path) {
            for cell in &self.pending[done..] {
                let mass = cell.volume() * whole_hi;
                // 0 · ∞ for a measure-zero cell: its true mass is 0.
                let region = (v, 0.0, if mass.is_nan() { 0.0 } else { mass });
                self.fold.apply(&mut self.settled, region);
                self.settled_gap += gap_score(self.fold, region);
            }
        }
        self.next_seq += total as u64;
        self.pending.clear();
        self.pending_depth.clear();
    }

    /// Whether the refiner still has work it would schedule: a pending
    /// batch, or remaining budget plus a positive-gap worklist. Used to
    /// mark refiners degraded when cancellation lands between rounds.
    fn would_refine(&self) -> bool {
        if !self.pending.is_empty() {
            return true;
        }
        if self.done {
            return false;
        }
        self.budget.saturating_sub(self.used) >= 2 && self.frontier.iter().any(|l| l.score > 0.0)
    }

    /// Whether cancellation cut this refiner short of the refinement it
    /// would otherwise have performed (its bounds are coarser than the
    /// deterministic uncancelled result, but still sound).
    pub fn interrupted(&self) -> bool {
        self.interrupted
    }

    /// The refiner's full cell budget (the uniform sweep's `k^n`).
    pub fn cell_budget(&self) -> usize {
        self.budget
    }

    /// The path's current (upper − lower) gap: settled cells plus the
    /// still-refinable worklist.
    pub fn gap(&self) -> f64 {
        let mut gap = self.settled_gap;
        for leaf in &self.frontier {
            gap += leaf.score;
        }
        gap
    }

    /// Cell evaluations spent so far (≤ the uniform sweep's `k^n`).
    pub fn cells_used(&self) -> usize {
        self.used
    }

    /// Cells the refiner bisected so far.
    pub fn splits(&self) -> u64 {
        self.splits
    }

    /// Settles the remaining worklist (in canonical sequence order)
    /// and returns the path's final `(lo, hi)` bounds.
    fn finish(&mut self) -> (f64, f64) {
        self.frontier.sort_by_key(|leaf| leaf.seq);
        for leaf in self.frontier.drain(..) {
            self.fold.apply(&mut self.settled, leaf.region);
            self.settled_gap += leaf.score;
        }
        self.settled
    }
}

/// Drives a set of per-path [`GridRefiner`]s in lockstep rounds on the
/// worker pool and returns each path's final `(lo, hi)` bounds (in
/// refiner order).
///
/// Each round dispatches every refiner's pending batch as one
/// [`run_jobs_with`] call, so workers adopt whole paths **and steal
/// child-cell chunks from still-running dominant paths**, exactly like
/// a uniform sweep; all scoring and worklist surgery happens on the
/// caller's thread between rounds. `gap_target > 0` stops refinement
/// early once the summed gap across all refiners drops below it (the
/// budget and depth limits always apply). Rounds, splits and the final
/// gap are recorded on the pool ([`gubpi_pool::PoolStats`]).
pub fn run_adaptive_refinement(
    pool: &WorkerPool,
    width: usize,
    refiners: &mut [GridRefiner<'_>],
    gap_target: f64,
) -> Vec<(f64, f64)> {
    run_adaptive_refinement_inner(pool, width, refiners, gap_target, None)
}

/// [`run_adaptive_refinement`] with cooperative cancellation: the token
/// is polled at every round boundary and inside each round's sweep (at
/// chunk boundaries). On cancellation the current round's evaluated
/// prefix integrates normally, every unevaluated pending cell settles
/// as its share of the path's whole-box enclosure, and still-refinable
/// worklists settle as-is — the returned bounds are always **sound**,
/// just coarser than the uncancelled run; affected refiners report
/// [`GridRefiner::interrupted`]. With an uncancelled token the result
/// is bit-identical to [`run_adaptive_refinement`].
pub fn run_adaptive_refinement_cancellable(
    pool: &WorkerPool,
    width: usize,
    refiners: &mut [GridRefiner<'_>],
    gap_target: f64,
    cancel: &CancelToken,
) -> Vec<(f64, f64)> {
    run_adaptive_refinement_inner(pool, width, refiners, gap_target, Some(cancel))
}

fn run_adaptive_refinement_inner(
    pool: &WorkerPool,
    width: usize,
    refiners: &mut [GridRefiner<'_>],
    gap_target: f64,
    cancel: Option<&CancelToken>,
) -> Vec<(f64, f64)> {
    let mut rounds: u64 = 0;
    loop {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            for r in refiners.iter_mut() {
                if r.would_refine() {
                    r.interrupted = true;
                }
            }
            break;
        }
        let mut any = false;
        for r in refiners.iter_mut() {
            any |= r.select_batch();
        }
        if !any {
            break;
        }
        let mut outs: Vec<Vec<(usize, Region)>> = refiners.iter().map(|_| Vec::new()).collect();
        let progress = {
            let jobs: Vec<PathJob<'_, (usize, Region)>> =
                refiners.iter().map(GridRefiner::round_job).collect();
            match cancel {
                None => {
                    run_jobs_with(pool, width, jobs, |j, item| outs[j].push(item));
                    None
                }
                Some(token) => Some(run_jobs_cancellable(pool, width, jobs, token, |j, item| {
                    outs[j].push(item)
                })),
            }
        };
        rounds += 1;
        if cancel.is_some_and(CancelToken::is_cancelled) {
            let progress = progress.expect("cancellable run reports progress");
            for ((r, out), prog) in refiners.iter_mut().zip(&outs).zip(&progress) {
                r.integrate_interrupted(out, prog.done);
            }
            for r in refiners.iter_mut() {
                if r.would_refine() {
                    r.interrupted = true;
                }
            }
            break;
        }
        for (r, out) in refiners.iter_mut().zip(&outs) {
            r.integrate(out);
        }
        if gap_target > 0.0 {
            let total: f64 = refiners.iter().map(GridRefiner::gap).sum();
            if total <= gap_target {
                break;
            }
        }
    }
    let final_gap: f64 = refiners.iter().map(GridRefiner::gap).sum();
    let splits: u64 = refiners.iter().map(GridRefiner::splits).sum();
    pool.note_refinement(rounds, splits, final_gap);
    refiners.iter_mut().map(GridRefiner::finish).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gubpi_lang::{infer, parse};
    use gubpi_symbolic::{symbolic_paths, SymExecOptions, TailEnclosure, TailPrefix};
    use gubpi_types::infer_interval_types;

    fn paths(src: &str) -> Vec<SymPath> {
        let p = parse(src).unwrap();
        let simple = infer(&p).unwrap();
        let typing = infer_interval_types(&p, &simple);
        symbolic_paths(&p, &typing, SymExecOptions::default())
    }

    fn query(src: &str, u: Interval, opts: PathBoundOptions) -> (f64, f64) {
        let mut lo = 0.0;
        let mut hi = 0.0;
        for p in paths(src) {
            let (l, h) = bound_path_query(&p, u, opts);
            lo += l;
            hi += h;
        }
        (lo, hi)
    }

    #[test]
    fn uniform_probability_is_exact_with_linear_method() {
        let (lo, hi) = query(
            "sample",
            Interval::new(0.0, 0.5),
            PathBoundOptions::default(),
        );
        assert!((lo - 0.5).abs() < 1e-9, "lo={lo}");
        assert!((hi - 0.5).abs() < 1e-9, "hi={hi}");
    }

    #[test]
    fn branch_probabilities_are_polytope_volumes() {
        // P(α₀ ≤ 0.3 branch) = 0.3 exactly.
        let (lo, hi) = query(
            "if sample <= 0.3 then 1 else 0",
            Interval::new(0.5, 1.5),
            PathBoundOptions::default(),
        );
        assert!((lo - 0.3).abs() < 1e-9);
        assert!((hi - 0.3).abs() < 1e-9);
    }

    #[test]
    fn sum_of_uniforms_crosses_half() {
        // P(α₀ + α₁ ≤ 0.75) = 0.75²/2 = 0.28125, exact by Lasserre.
        let (lo, hi) = query(
            "if sample + sample <= 0.75 then 1 else 0",
            Interval::new(0.5, 1.5),
            PathBoundOptions::default(),
        );
        assert!((lo - 0.28125).abs() < 1e-9, "lo={lo}");
        assert!((hi - 0.28125).abs() < 1e-9, "hi={hi}");
    }

    #[test]
    fn linear_score_bounds_converge() {
        // ⟦score(α₀); α₀⟧([0,1]) = ∫₀¹ x dx = 1/2.
        for (splits, tol) in [(4usize, 0.26), (32, 0.04)] {
            let opts = PathBoundOptions {
                splits,
                ..Default::default()
            };
            let (lo, hi) = query("let x = sample in score(x); x", Interval::UNIT, opts);
            assert!(lo <= 0.5 && 0.5 <= hi, "[{lo}, {hi}]");
            assert!(hi - lo <= tol, "splits={splits}: [{lo}, {hi}]");
        }
    }

    #[test]
    fn nonlinear_paths_fall_back_to_grid() {
        // result α₀·α₁ is non-linear; ⟦P⟧([0, 0.25]) with no scores is
        // P(xy ≤ 0.25) = 0.25(1 + ln 4) ≈ 0.5966.
        let src = "let x = sample in let y = sample in
                   if x * y <= 0.25 then 1 else 0";
        let p = &paths(src)[..];
        assert!(p.iter().any(|q| !linear_applicable(q)));
        let opts = PathBoundOptions {
            splits: 64,
            ..Default::default()
        };
        let mut sink = SingleQuery::new(Interval::new(0.5, 1.5));
        for q in p {
            bound_path(q, opts, &mut sink);
        }
        let truth = 0.25 * (1.0 + 4.0f64.ln());
        assert!(sink.lo <= truth && truth <= sink.hi);
        assert!(sink.hi - sink.lo < 0.1, "[{}, {}]", sink.lo, sink.hi);
    }

    #[test]
    fn observe_reweights_mass() {
        // Z = ∫₀¹ pdf_N(0.5, 1)(x) dx; compare against erf ground truth.
        let src = "observe sample from normal(0.5, 1); 1";
        let opts = PathBoundOptions {
            splits: 64,
            ..Default::default()
        };
        let (lo, hi) = query(src, Interval::REAL, opts);
        use gubpi_dist::ContinuousDist;
        let n = gubpi_dist::Normal::new(0.5, 1.0);
        let truth = n.cdf(1.0) - n.cdf(0.0);
        assert!(lo <= truth && truth <= hi, "truth={truth} ∉ [{lo}, {hi}]");
        assert!(hi - lo < 0.05);
    }

    #[test]
    fn certified_volumes_also_sandwich() {
        let opts = PathBoundOptions {
            splits: 8,
            certified_volumes: true,
            volume_budget: 2_000,
            ..Default::default()
        };
        let (lo, hi) = query(
            "if sample + sample <= 0.75 then 1 else 0",
            Interval::new(0.5, 1.5),
            opts,
        );
        assert!(lo <= 0.28125 && 0.28125 <= hi, "[{lo}, {hi}]");
        assert!(hi - lo < 0.1);
    }

    #[test]
    fn grid_splits_is_exact_at_the_budget_boundary() {
        // k^n exactly equal to the budget must be kept ...
        assert_eq!(grid_splits(10, 2, 100), 10);
        assert_eq!(grid_splits(7, 3, 343), 7);
        assert_eq!(grid_splits(32, 1, 32), 32);
        // ... and one below the boundary must drop k.
        assert_eq!(grid_splits(10, 2, 99), 9);
        assert_eq!(grid_splits(7, 3, 342), 6);
        assert_eq!(grid_splits(32, 1, 31), 31);
        // The budget only ever *reduces* the requested splits.
        assert_eq!(grid_splits(4, 2, 1_000_000), 4);
        // k ≥ 1 for every n, even when k = 1 still overshoots the budget.
        assert_eq!(grid_splits(1, 5, 1), 1);
        assert_eq!(grid_splits(0, 3, 0), 1);
        assert_eq!(grid_splits(1000, 64, 1), 1);
        // Powers beyond u128 saturate instead of wrapping.
        assert_eq!(grid_splits(2, 200, usize::MAX), 1);
        // Near the 2^53 f64-exactness cliff the integer check stays
        // exact: 94906266² = 9007199326062756 > 2^53, and its f64
        // rounding hides the difference from a one-off budget.
        let k = 94_906_266usize;
        assert_eq!(grid_splits(k, 2, k * k), k);
        assert_eq!(grid_splits(k, 2, k * k - 1), k - 1);
    }

    #[test]
    fn grid_splits_invariants_hold_for_every_n() {
        for n in 1..=12usize {
            for budget in [1usize, 2, 63, 64, 65, 4095, 4096, 100_000] {
                let k = grid_splits(32, n, budget);
                assert!(k >= 1, "n={n} budget={budget}");
                if k > 1 {
                    let pow = (k as u128).checked_pow(n as u32).expect("small");
                    assert!(pow <= budget as u128, "n={n} budget={budget} k={k}");
                    // Maximality: k+1 (when allowed by splits) overshoots.
                    if k < 32 {
                        let next = ((k + 1) as u128).saturating_pow(n as u32);
                        assert!(next > budget as u128, "n={n} budget={budget} k={k}");
                    }
                }
            }
        }
    }

    #[test]
    fn region_parallel_grid_is_bit_identical() {
        // Non-linear path: 3-sample grid, 8³ = 512 cells.
        let src = "let x = sample in let y = sample in
                   if x * y <= 0.25 then sample else 2";
        let opts = PathBoundOptions {
            splits: 8,
            ..Default::default()
        };
        for p in paths(src).iter().filter(|p| !linear_applicable(p)) {
            let mut seq: Vec<Region> = Vec::new();
            bound_path_threaded(p, opts, Threads::Off, &mut seq);
            for threads in [Threads::Fixed(2), Threads::Fixed(4), Threads::Fixed(16)] {
                let mut par: Vec<Region> = Vec::new();
                bound_path_threaded(p, opts, threads, &mut par);
                assert_eq!(seq.len(), par.len());
                for (a, b) in seq.iter().zip(&par) {
                    assert_eq!(a.0, b.0);
                    assert_eq!(a.1.to_bits(), b.1.to_bits(), "lower mass bits");
                    assert_eq!(a.2.to_bits(), b.2.to_bits(), "upper mass bits");
                }
            }
        }
    }

    #[test]
    fn huge_split_requests_stay_within_the_region_budget() {
        // Regression: splits^boxed used to be computed as a raw usize
        // product, so absurd-but-reachable options (splits = 2^16 with
        // two boxed expressions = 2^32 combos; worse with more) could
        // overflow the flat index space and silently skip combinations —
        // unsound upper bounds. The budget now caps the chunk count, so
        // the sweep stays finite and the bounds stay sound.
        let src = "let x = sample in let y = sample in score(x + y); score(2 - x); x + y";
        let opts = PathBoundOptions {
            splits: 1 << 16,
            region_budget: 4_096,
            ..Default::default()
        };
        // ⟦P⟧([0, 1]) = ∫∫_{x+y ≤ 1} (x+y)(2−x) over the unit square plus
        // the [1, 2] part clipped to U = [0, 1]: just require soundness
        // via a Monte-Carlo-free sanity envelope and finite runtime.
        let (lo, hi) = query(src, Interval::new(0.0, 2.0), opts);
        // Total mass: ∫₀¹∫₀¹ (x+y)(2−x) dx dy = 4/3 − 1/6 − ... compute:
        // ∫(x+y)(2−x) = ∫ 2x − x² + 2y − xy dx over [0,1] = 1 − 1/3 + 2y − y/2
        // ⇒ ∫₀¹ (2/3 + 3y/2) dy = 2/3 + 3/4 = 17/12 ≈ 1.41667.
        let truth = 17.0 / 12.0;
        assert!(
            lo <= truth + 1e-9 && truth <= hi + 1e-9,
            "truth {truth} outside [{lo}, {hi}]"
        );
        assert!(hi - lo < 0.5, "budgeted chunks must stay informative");
    }

    #[test]
    fn region_parallel_linear_is_bit_identical() {
        // Linear path with two boxed score expressions: splits² combos.
        let src = "let x = sample in let y = sample in
                   score(x + y); score(2 - x); x + y";
        let opts = PathBoundOptions {
            splits: 16,
            ..Default::default()
        };
        for p in &paths(src) {
            assert!(linear_applicable(p));
            let seq = bound_path_query_threaded(p, Interval::UNIT, opts, Threads::Off);
            for threads in [Threads::Fixed(2), Threads::Fixed(4)] {
                let par = bound_path_query_threaded(p, Interval::UNIT, opts, threads);
                assert_eq!(seq.0.to_bits(), par.0.to_bits());
                assert_eq!(seq.1.to_bits(), par.1.to_bits());
            }
        }
    }

    #[test]
    fn sampleless_paths_work() {
        let (lo, hi) = query(
            "score(0.25); 2",
            Interval::new(1.5, 2.5),
            PathBoundOptions::default(),
        );
        assert!((lo - 0.25).abs() < 1e-12 && (hi - 0.25).abs() < 1e-12);
    }

    /// The compiled kernel and the tree-walking interpreter must emit
    /// **the same region stream, bit for bit** — same regions, same
    /// order, same masses — for every plan shape (grid, linear,
    /// sampleless) and every thread count.
    #[test]
    fn kernel_and_interpreter_emit_identical_region_streams() {
        let sources = [
            // Non-linear: §6.3 grid.
            "let x = sample in let y = sample in
             if x * y <= 0.25 then sample else 2",
            // Linear with two boxed score expressions: §6.4 chunks.
            "let x = sample in let y = sample in score(x + y); score(2 - x); x + y",
            // Sampleless.
            "score(0.25); 2",
            // Mixed constraints + pdf scores.
            "let x = sample in observe 0.4 from normal(x, 0.25);
             if x <= 0.5 then x else 1 - x",
        ];
        for src in sources {
            for p in &paths(src) {
                let kernel_opts = PathBoundOptions {
                    splits: 8,
                    use_kernel: true,
                    ..Default::default()
                };
                let interp_opts = PathBoundOptions {
                    use_kernel: false,
                    ..kernel_opts
                };
                let mut with_kernel: Vec<Region> = Vec::new();
                let mut with_interp: Vec<Region> = Vec::new();
                bound_path(p, kernel_opts, &mut with_kernel);
                bound_path(p, interp_opts, &mut with_interp);
                assert_eq!(with_kernel.len(), with_interp.len(), "{src}");
                for (a, b) in with_kernel.iter().zip(&with_interp) {
                    assert_eq!(a.0, b.0, "{src}: value range");
                    assert_eq!(a.1.to_bits(), b.1.to_bits(), "{src}: lower mass bits");
                    assert_eq!(a.2.to_bits(), b.2.to_bits(), "{src}: upper mass bits");
                }
                // And through the threaded query entry point.
                let u = Interval::new(0.0, 1.0);
                let kq = bound_path_query_threaded(p, u, kernel_opts, Threads::Fixed(4));
                let iq = bound_path_query(p, u, interp_opts);
                assert_eq!(kq.0.to_bits(), iq.0.to_bits(), "{src}");
                assert_eq!(kq.1.to_bits(), iq.1.to_bits(), "{src}");
            }
        }
    }

    #[test]
    fn no_kernel_env_values_parse() {
        assert!(!kernel_disabled(None));
        assert!(!kernel_disabled(Some("")));
        assert!(!kernel_disabled(Some("0")));
        assert!(kernel_disabled(Some("1")));
        assert!(kernel_disabled(Some("true")));
        assert!(kernel_disabled(Some("yes")));
    }

    #[test]
    fn no_tail_env_values_parse() {
        assert!(!tail_disabled(None));
        assert!(!tail_disabled(Some("")));
        assert!(!tail_disabled(Some("0")));
        assert!(tail_disabled(Some("1")));
        assert!(tail_disabled(Some("true")));
        assert!(tail_disabled(Some("yes")));
    }

    /// A minimal sampleless ⊤ path: the `[0, ∞]` placeholder is its
    /// only score, exactly as the executor emits it.
    fn top_path_with(tail: Option<TailEnclosure>) -> SymPath {
        SymPath {
            result: Arc::new(SymVal::Interval(Interval::REAL)),
            n_samples: 0,
            constraints: vec![],
            scores: vec![Arc::new(SymVal::Interval(Interval::NON_NEG))],
            truncated: true,
            budget_truncated: true,
            tail,
        }
    }

    #[test]
    fn tail_substitution_tightens_the_placeholder_score() {
        let tail = TailEnclosure {
            unfoldings_explored: 5,
            per_step_weight: Interval::new(0.0, 0.5),
            continuation_weight: Interval::new(0.0, 1.0),
            prefix: None,
        };
        let path = top_path_with(Some(tail));
        let opts = PathBoundOptions::default();
        assert!(opts.use_tail, "tests run without GUBPI_NO_TAIL");
        let sub = tail_substituted(&path, &opts).expect("c_hi = 0.5 < 1 must substitute");
        // x_hi/(1 − c_hi) = 1/0.5 = 2, up to outward rounding.
        let SymVal::Interval(iv) = **sub.scores.last().unwrap() else {
            panic!("substituted placeholder stays an interval literal");
        };
        assert_eq!(iv.lo(), 0.0);
        assert!(iv.hi() >= 2.0 && iv.hi() < 2.0 + 1e-12, "hi={}", iv.hi());
        // The bound itself: upper mass goes from +∞ to the remainder.
        let no_tail = PathBoundOptions {
            use_tail: false,
            ..opts
        };
        let (lo_off, hi_off) = bound_path_query(&path, Interval::REAL, no_tail);
        let (lo_on, hi_on) = bound_path_query(&path, Interval::REAL, opts);
        assert_eq!(hi_off, f64::INFINITY);
        assert!(hi_on.is_finite() && hi_on <= 2.0 + 1e-9, "hi_on={hi_on}");
        assert_eq!(lo_off.to_bits(), lo_on.to_bits(), "lower bound untouched");
    }

    #[test]
    fn score_free_loops_at_c_equal_one_keep_the_bare_top() {
        // `c == 1` without a ranking certificate must fall back to ⊤ —
        // never divide by `1 − c_hi = 0`.
        let boundary = TailEnclosure {
            unfoldings_explored: 3,
            per_step_weight: Interval::new(0.0, 1.0),
            continuation_weight: Interval::new(0.0, 1.0),
            prefix: None,
        };
        let opts = PathBoundOptions::default();
        assert!(tail_substituted(&top_path_with(Some(boundary)), &opts).is_none());
        // Just below the boundary the closed form is finite and sound.
        let below = TailEnclosure {
            per_step_weight: Interval::new(0.0, 1.0 - 1e-9),
            ..boundary
        };
        let sub = tail_substituted(&top_path_with(Some(below)), &opts).unwrap();
        let SymVal::Interval(iv) = **sub.scores.last().unwrap() else {
            panic!("interval literal");
        };
        assert!(iv.hi().is_finite() && iv.hi() >= 1e9);
        // Above 1 (an analysis that failed to contract) also bails.
        let above = TailEnclosure {
            per_step_weight: Interval::new(0.0, 1.5),
            ..boundary
        };
        assert!(tail_substituted(&top_path_with(Some(above)), &opts).is_none());
        // No enclosure, disabled tails, and non-⊤ paths all bail too.
        assert!(tail_substituted(&top_path_with(None), &opts).is_none());
        let off = PathBoundOptions {
            use_tail: false,
            ..opts
        };
        let some = TailEnclosure {
            per_step_weight: Interval::new(0.0, 0.5),
            ..boundary
        };
        assert!(tail_substituted(&top_path_with(Some(some)), &off).is_none());
        let mut exact = top_path_with(Some(some));
        exact.budget_truncated = false;
        assert!(tail_substituted(&exact, &opts).is_none());
    }

    #[test]
    fn ranked_prefixes_rescue_the_c_equal_one_boundary() {
        // An eventually-geometric certificate with rate 0 (the escape-
        // mass / bounded-prefix shape the ranking pass emits): before
        // k₀ the decay term vanishes, at or past k₀ it contributes one
        // full unit — both finite where plain geometric bails.
        let opts = PathBoundOptions::default();
        let ranked = |explored: u32| TailEnclosure {
            unfoldings_explored: explored,
            per_step_weight: Interval::new(0.0, 1.0),
            continuation_weight: Interval::new(0.0, 2.0),
            prefix: Some(TailPrefix {
                prefix_bound: 4,
                rate: Interval::ZERO,
                prefix_weight: Interval::new(0.0, 1.0),
            }),
        };
        let hi_of = |t: TailEnclosure| {
            let sub = tail_substituted(&top_path_with(Some(t)), &opts)
                .expect("ranked prefix must substitute at c = 1");
            let SymVal::Interval(iv) = **sub.scores.last().unwrap() else {
                panic!("interval literal");
            };
            assert_eq!(iv.lo(), 0.0);
            iv.hi()
        };
        // Cut before the prefix ends: 0^{4−2} kills the decay term, so
        // the bound is x_hi · w_hi = 2, up to outward rounding.
        let early = hi_of(ranked(2));
        assert!((2.0..2.0 + 1e-9).contains(&early), "early={early}");
        // Cut past the prefix: 0^0 = 1 adds the full decay unit —
        // x_hi · (w_hi + 1) = 4.
        let late = hi_of(ranked(5));
        assert!((4.0..4.0 + 1e-9).contains(&late), "late={late}");
        // A genuine post-prefix rate: c_eff = 0.5, two prefix steps
        // left → 0.5² / (1 − 0.5) = 0.5; with w = 0 and x = 1 the
        // bound is ≈ 0.5, far below the plain series' 2.
        let mut coin = ranked(1);
        coin.continuation_weight = Interval::new(0.0, 1.0);
        coin.prefix = Some(TailPrefix {
            prefix_bound: 3,
            rate: Interval::new(0.0, 0.5),
            prefix_weight: Interval::ZERO,
        });
        let discounted = hi_of(coin);
        assert!((0.5..0.5 + 1e-9).contains(&discounted), "{discounted}");
    }

    #[test]
    fn unusable_prefixes_and_plain_facts_keep_their_old_behavior() {
        let opts = PathBoundOptions::default();
        let base = TailEnclosure {
            unfoldings_explored: 3,
            per_step_weight: Interval::new(0.0, 1.0),
            continuation_weight: Interval::new(0.0, 1.0),
            prefix: Some(TailPrefix {
                prefix_bound: 2,
                rate: Interval::new(0.0, 1.0), // rate at the boundary
                prefix_weight: Interval::new(0.0, 1.0),
            }),
        };
        // A prefix whose own rate fails to contract cannot rescue ⊤.
        assert!(tail_substituted(&top_path_with(Some(base)), &opts).is_none());
        // `--no-tail` wins over any certificate.
        let good = TailEnclosure {
            prefix: Some(TailPrefix {
                prefix_bound: 0,
                rate: Interval::ZERO,
                prefix_weight: Interval::new(0.0, 1.0),
            }),
            ..base
        };
        let off = PathBoundOptions {
            use_tail: false,
            ..opts
        };
        assert!(tail_substituted(&top_path_with(Some(good)), &off).is_none());
        // A contracting plain fact takes the literal PR 7 branch even
        // when a prefix rides along: bit-identical to a prefix-free
        // enclosure.
        let plain = TailEnclosure {
            per_step_weight: Interval::new(0.0, 0.5),
            prefix: None,
            ..base
        };
        let both = TailEnclosure {
            per_step_weight: Interval::new(0.0, 0.5),
            ..good
        };
        let hi = |t: TailEnclosure| {
            let sub = tail_substituted(&top_path_with(Some(t)), &opts).unwrap();
            let SymVal::Interval(iv) = **sub.scores.last().unwrap() else {
                panic!("interval literal");
            };
            iv.hi()
        };
        assert_eq!(hi(plain).to_bits(), hi(both).to_bits());
    }

    #[test]
    fn tail_enclosed_geo_paths_get_finite_upper_bounds_end_to_end() {
        use gubpi_analysis::ProgramFacts;
        use gubpi_symbolic::{symbolic_paths_report, WorkerPool};

        let src = "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0";
        let p = parse(src).unwrap();
        let simple = infer(&p).unwrap();
        let typing = infer_interval_types(&p, &simple);
        let facts = ProgramFacts::compute(&p, &typing);
        let opts = SymExecOptions {
            max_fix_unfoldings: 16,
            max_paths: 6,
            ..Default::default()
        };
        let (paths, _) =
            symbolic_paths_report(&p, &typing, None, Some(&facts), opts, WorkerPool::global());
        assert!(paths.iter().any(|q| q.budget_truncated));
        let with_tail = PathBoundOptions::default();
        let no_tail = PathBoundOptions {
            use_tail: false,
            ..with_tail
        };
        let sum = |o: PathBoundOptions| {
            let mut acc = (0.0, 0.0);
            for q in &paths {
                let (l, h) = bound_path_query(q, Interval::REAL, o);
                acc.0 += l;
                acc.1 += h;
            }
            acc
        };
        let (lo_on, hi_on) = sum(with_tail);
        let (lo_off, hi_off) = sum(no_tail);
        // Bare ⊤ paths force +∞; the geometric remainder stays finite
        // and still covers the total measure (a probability: exactly 1).
        assert_eq!(hi_off, f64::INFINITY);
        assert!(hi_on.is_finite(), "tail-enclosed upper must be finite");
        assert!(hi_on >= 1.0, "upper must still cover the true mass 1");
        assert_eq!(lo_on.to_bits(), lo_off.to_bits(), "lower bounds identical");
    }

    #[test]
    fn grid_sweeps_carry_the_tape_cost_estimate() {
        let src = "let x = sample in let y = sample in
                   if x * y <= 0.25 then sample else 2";
        for p in paths(src).iter().filter(|p| !linear_applicable(p)) {
            let opts = PathBoundOptions {
                splits: 8,
                use_kernel: true,
                ..Default::default()
            };
            let PathJob::Sweep { total, cost, .. } = plan_path(p, opts) else {
                panic!("grid paths plan as sweeps");
            };
            assert_eq!(total, 8usize.pow(p.n_samples as u32));
            let tape = gubpi_symbolic::Tape::for_path(p);
            assert_eq!(cost, tape.cost(), "cost must be the tape's estimate");
            // The interpreter fallback carries its own (tree-size)
            // estimate; both are pure functions of the plan.
            let interp = PathBoundOptions {
                use_kernel: false,
                ..opts
            };
            let PathJob::Sweep {
                cost: tree_cost, ..
            } = plan_path(p, interp)
            else {
                panic!("grid paths plan as sweeps");
            };
            assert!(tree_cost > 0);
        }
    }
}
