//! Bounding the denotation of one symbolic interval path (§6.3–6.4).

use gubpi_interval::{BoxN, Interval};
use gubpi_polytope::{HPolytope, LinExpr};
use gubpi_symbolic::SymPath;

/// Where per-region contributions are accumulated.
///
/// For each explored region the path analysis reports a triple
/// `(value_range, lo_mass, hi_mass)`: all traces in the region yield a
/// value in `value_range`; their total weighted measure is at least
/// `lo_mass` (with constraints holding *definitely*) and at most
/// `hi_mass` (constraints holding *possibly*).
pub trait BoundSink {
    /// Records one region's contribution.
    fn add(&mut self, value_range: Interval, lo_mass: f64, hi_mass: f64);
}

/// A sink for a single query `⟦P⟧(U)`.
#[derive(Clone, Debug)]
pub struct SingleQuery {
    /// The query set `U`.
    pub u: Interval,
    /// Accumulated lower bound.
    pub lo: f64,
    /// Accumulated upper bound.
    pub hi: f64,
}

impl SingleQuery {
    /// A fresh query accumulator for `U`.
    pub fn new(u: Interval) -> SingleQuery {
        SingleQuery {
            u,
            lo: 0.0,
            hi: 0.0,
        }
    }
}

impl BoundSink for SingleQuery {
    fn add(&mut self, value_range: Interval, lo_mass: f64, hi_mass: f64) {
        if value_range.subset_of(&self.u) {
            self.lo += lo_mass;
        }
        if value_range.intersects(&self.u) {
            self.hi += hi_mass;
        }
    }
}

/// Options for per-path bound computation.
///
/// `Eq`/`Hash` are derived so the analyzer's memo cache can key on the
/// exact option values (every field is integral or boolean).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct PathBoundOptions {
    /// Chunks per boxed linear expression (the paper's "evenly sized
    /// chunks", §6.4) and per grid dimension (§6.3).
    pub splits: usize,
    /// Upper bound on the total number of regions per path; the grid
    /// semantics reduces per-dimension splits to stay below it.
    pub region_budget: usize,
    /// Number of linear expressions boxed simultaneously (Cartesian
    /// product of chunks); beyond this, extra expressions are bounded by
    /// a single LP range.
    pub max_boxed: usize,
    /// Use certified box-subdivision volumes instead of Lasserre's exact
    /// recursion.
    pub certified_volumes: bool,
    /// Box-subdivision budget per volume query when the exact recursion
    /// is not used.
    pub volume_budget: usize,
    /// Largest *coupled* dimension for which the exact Lasserre volume is
    /// used; beyond it, certified box bounds take over.
    pub exact_dim_cap: usize,
}

impl Default for PathBoundOptions {
    fn default() -> PathBoundOptions {
        PathBoundOptions {
            splits: 32,
            region_budget: 100_000,
            max_boxed: 2,
            certified_volumes: false,
            volume_budget: 4_000,
            exact_dim_cap: 7,
        }
    }
}

/// Bounds `⟦Ψ⟧(U)` for one path directly.
///
/// For linear paths the query set `U` is folded into the polytopes
/// (the 𝔓_lb / 𝔓_ub of §6.4), which avoids any boundary slack: the
/// membership test becomes part of the volume computation.
pub fn bound_path_query(path: &SymPath, u: Interval, opts: PathBoundOptions) -> (f64, f64) {
    if path.n_samples == 0 {
        let mut sink = SingleQuery::new(u);
        bound_sampleless(path, &mut sink);
        return (sink.lo, sink.hi);
    }
    if linear_applicable(path) {
        let mut lo = 0.0;
        let mut hi = 0.0;
        bound_linear(path, opts, ResultMode::Query(u), &mut |_vr, l, h| {
            lo += l;
            hi += h;
        });
        (lo, hi)
    } else {
        let mut sink = SingleQuery::new(u);
        bound_grid(path, opts, &mut sink);
        (sink.lo, sink.hi)
    }
}

/// Bounds `⟦Ψ⟧` for one path, feeding regions into the sink.
///
/// Dispatches to the linear semantics when the path's constraints and
/// result are interval-linear (§6.4), otherwise to the standard grid
/// semantics (§6.3).
pub fn bound_path(path: &SymPath, opts: PathBoundOptions, sink: &mut impl BoundSink) {
    if path.n_samples == 0 {
        bound_sampleless(path, sink);
        return;
    }
    if linear_applicable(path) {
        bound_linear(path, opts, ResultMode::Boxed, &mut |vr, l, h| {
            sink.add(vr, l, h)
        });
    } else {
        bound_grid(path, opts, sink);
    }
}

/// Like [`bound_path`] but always uses the grid semantics — the §6.3 vs
/// §6.4 ablation baseline.
pub fn bound_path_grid_only(path: &SymPath, opts: PathBoundOptions, sink: &mut impl BoundSink) {
    if path.n_samples == 0 {
        bound_sampleless(path, sink);
    } else {
        bound_grid(path, opts, sink);
    }
}

/// Is the linear semantics applicable (linear constraints and result)?
pub fn linear_applicable(path: &SymPath) -> bool {
    let n = path.n_samples;
    path.result.linear_form(n).is_some()
        && path
            .constraints
            .iter()
            .all(|c| c.value.linear_form(n).is_some())
}

/// Paths without samples: a single region of measure 1.
fn bound_sampleless(path: &SymPath, sink: &mut impl BoundSink) {
    let empty = BoxN::empty();
    let def = path.constraints_on_box(&empty, true);
    let pos = path.constraints_on_box(&empty, false);
    if !pos {
        return;
    }
    let w = path.weight_range_over_box(&empty);
    let v = path.result.range_over_box(&empty);
    sink.add(v, if def { w.lo() } else { 0.0 }, w.hi());
}

// --------------------------------------------------------------------
// Standard interval trace semantics on a path (§6.3)
// --------------------------------------------------------------------

/// Grid splitting of `[0,1]^n`: every cell is checked against `Δ`
/// (∀ for the lower, ∃ for the upper bound), weighted by the interval
/// product of `Ξ`, and reported with the result range.
fn bound_grid(path: &SymPath, opts: PathBoundOptions, sink: &mut impl BoundSink) {
    let n = path.n_samples;
    // Choose per-dimension splits within the region budget.
    let mut k = opts.splits.max(1);
    while k > 1 && (k as f64).powi(n as i32) > opts.region_budget as f64 {
        k -= 1;
    }
    let mut idx = vec![0usize; n];
    let cell_edges: Vec<Vec<Interval>> = (0..n).map(|_| Interval::UNIT.split(k)).collect();
    'outer: loop {
        let cell: BoxN = idx
            .iter()
            .enumerate()
            .map(|(d, &i)| cell_edges[d][i])
            .collect();
        process_region(path, &cell, sink);
        for slot in idx.iter_mut() {
            *slot += 1;
            if *slot < k {
                continue 'outer;
            }
            *slot = 0;
        }
        break;
    }
}

fn process_region(path: &SymPath, cell: &BoxN, sink: &mut impl BoundSink) {
    if !path.constraints_on_box(cell, false) {
        return; // definitely outside
    }
    let vol = cell.volume();
    let w = path.weight_range_over_box(cell);
    let v = path.result.range_over_box(cell);
    let definite = path.constraints_on_box(cell, true);
    let lo = if definite { vol * w.lo() } else { 0.0 };
    sink.add(v, lo, vol * w.hi());
}

// --------------------------------------------------------------------
// Linear interval trace semantics (§6.4, Appendix E.1)
// --------------------------------------------------------------------

/// How the result value participates in the linear analysis.
enum ResultMode {
    /// Box the result as one of the chunked linear expressions; regions
    /// are emitted with their value range (histogram sinks).
    Boxed,
    /// Fold `result ∈ U` into the polytopes (`𝔓_lb`/`𝔓_ub` of §6.4):
    /// membership is decided by the volume computation itself.
    Query(Interval),
}

fn bound_linear(
    path: &SymPath,
    opts: PathBoundOptions,
    mode: ResultMode,
    emit: &mut impl FnMut(Interval, f64, f64),
) {
    let n = path.n_samples;

    // 𝔓_lb: constraints hold for *all* refinements of interval parts;
    // 𝔓_ub: for *some* refinement.
    let mut p_lb = HPolytope::unit_cube(n);
    let mut p_ub = HPolytope::unit_cube(n);
    for c in &path.constraints {
        let (lin, iv) = c.value.linear_form(n).expect("checked by caller");
        use gubpi_symbolic::CmpDir::*;
        match c.dir {
            // lin + iv ≤ 0
            LeZero => {
                if iv.hi().is_finite() {
                    p_lb.add_le_zero(&(&lin + &LinExpr::constant(n, iv.hi())));
                } else {
                    // Never definitely ≤ 0: empty lower region.
                    p_lb.add_constraint(vec![0.0; n], -1.0);
                }
                if iv.lo().is_finite() {
                    p_ub.add_le_zero(&(&lin + &LinExpr::constant(n, iv.lo())));
                }
                // iv.lo = −∞ ⇒ possibly ≤ 0 everywhere: no cut.
            }
            // lin + iv > 0 (closed to ≥ 0; boundary has measure zero)
            GtZero => {
                if iv.lo().is_finite() {
                    p_lb.add_ge_zero(&(&lin + &LinExpr::constant(n, iv.lo())));
                } else {
                    p_lb.add_constraint(vec![0.0; n], -1.0);
                }
                if iv.hi().is_finite() {
                    p_ub.add_ge_zero(&(&lin + &LinExpr::constant(n, iv.hi())));
                }
            }
        }
    }

    // Fold the query into the polytopes / decide how the result reports.
    let (res_lin, res_iv) = path.result.linear_form(n).expect("checked by caller");
    let mut result_boxed = false;
    let mut const_value_range = Interval::point(res_lin.constant_term()) + res_iv;
    let mut const_in_lo = true;
    let mut const_in_hi = true;
    match mode {
        ResultMode::Boxed => {
            result_boxed = !res_lin.is_constant();
        }
        ResultMode::Query(u) => {
            if res_lin.is_constant() {
                // Classify once: all traces share the value range.
                const_in_lo = const_value_range.subset_of(&u);
                const_in_hi = const_value_range.intersects(&u);
                if !const_in_hi {
                    return;
                }
            } else {
                // V ⊆ U for the lower bound:
                //   lin + iv.hi ≤ u.hi  ∧  lin + iv.lo ≥ u.lo
                if u.hi().is_finite() {
                    if res_iv.hi().is_finite() {
                        p_lb.add_le_zero(&(&res_lin + &LinExpr::constant(n, res_iv.hi() - u.hi())));
                    } else {
                        p_lb.add_constraint(vec![0.0; n], -1.0);
                    }
                }
                if u.lo().is_finite() {
                    if res_iv.lo().is_finite() {
                        p_lb.add_ge_zero(&(&res_lin + &LinExpr::constant(n, res_iv.lo() - u.lo())));
                    } else {
                        p_lb.add_constraint(vec![0.0; n], -1.0);
                    }
                }
                // V ∩ U ≠ ∅ for the upper bound:
                //   lin + iv.lo ≤ u.hi  ∧  lin + iv.hi ≥ u.lo
                if u.hi().is_finite() && res_iv.lo().is_finite() {
                    p_ub.add_le_zero(&(&res_lin + &LinExpr::constant(n, res_iv.lo() - u.hi())));
                }
                if u.lo().is_finite() && res_iv.hi().is_finite() {
                    p_ub.add_ge_zero(&(&res_lin + &LinExpr::constant(n, res_iv.hi() - u.lo())));
                }
                // Report the full possible value range; the sink closure
                // for queries ignores it.
                const_value_range = Interval::REAL;
            }
        }
    }
    if p_ub.is_empty() {
        return;
    }

    // Boxed expressions: the result (when boxed) first, then the linear
    // parts of every score decomposition (Appendix E.1). Identical
    // expressions share one boxed slot.
    let mut boxed: Vec<LinExpr> = Vec::new();
    if result_boxed {
        boxed.push(res_lin.clone());
    }
    let decomps: Vec<_> = path
        .scores
        .iter()
        .map(|w| w.linear_decomposition(n))
        .collect();
    // Map each score part to either a boxed index or a fixed LP range:
    // `part_source[s][p] = Ok(boxed_idx) | Err(fixed_range)`.
    let mut part_source: Vec<Vec<Result<usize, Interval>>> = Vec::new();
    for d in &decomps {
        let mut row = Vec::new();
        for (lin, iv) in &d.parts {
            if let Some(k) = boxed.iter().position(|b| b == lin) {
                row.push(Ok(k));
            } else if boxed.len() < opts.max_boxed {
                boxed.push(lin.clone());
                row.push(Ok(boxed.len() - 1));
            } else {
                let base = p_ub.range_of(lin).unwrap_or(Interval::REAL);
                row.push(Err(base + *iv));
            }
        }
        part_source.push(row);
    }

    // Ranges of the boxed expressions over 𝔓_ub, split into chunks.
    let mut chunkings: Vec<Vec<Interval>> = Vec::new();
    for lin in &boxed {
        let range = match p_ub.range_of(lin) {
            Some(r) if r.is_finite() => r,
            _ => return,
        };
        if range.width() == 0.0 {
            chunkings.push(vec![range]);
        } else {
            chunkings.push(range.split(opts.splits.max(1)));
        }
    }

    let exact_cap = if opts.certified_volumes {
        0
    } else {
        opts.exact_dim_cap
    };

    // Cartesian iteration over chunk combinations.
    let mut idx = vec![0usize; boxed.len()];
    loop {
        let chunks: Vec<Interval> = idx
            .iter()
            .enumerate()
            .map(|(i, &j)| chunkings[i][j])
            .collect();

        // Clip both polytopes to the chunks.
        let mut q_lb = p_lb.clone();
        let mut q_ub = p_ub.clone();
        for (lin, ch) in boxed.iter().zip(&chunks) {
            // ch.lo ≤ lin ≤ ch.hi
            let upper = &(lin.clone()) + &LinExpr::constant(n, -ch.hi());
            let lower = &(lin.clone()) + &LinExpr::constant(n, -ch.lo());
            q_lb.add_le_zero(&upper);
            q_lb.add_ge_zero(&lower);
            q_ub.add_le_zero(&upper);
            q_ub.add_ge_zero(&lower);
        }

        // One LP feasibility check prunes most chunk combinations (the
        // boxed expressions co-vary, so the Cartesian grid is sparse);
        // q_lb ⊆ q_ub, so an empty q_ub kills both volumes.
        if q_ub.is_empty() {
            if advance(&mut idx, &chunkings) {
                continue;
            }
            return;
        }
        let (vol_lb, _) = q_lb.volume_range(exact_cap, opts.volume_budget);
        let (_, vol_ub) = q_ub.volume_range(exact_cap, opts.volume_budget);

        if vol_ub > 0.0 || vol_lb > 0.0 {
            // Weight interval: product over scores of the skeleton
            // evaluated with each part pinned to its chunk (+ interval
            // slack) or fixed LP range.
            let mut w = Interval::ONE;
            for (s, d) in decomps.iter().enumerate() {
                let ranges: Vec<Interval> = d
                    .parts
                    .iter()
                    .enumerate()
                    .map(|(pi, (_, iv))| match part_source[s][pi] {
                        Ok(bi) => chunks[bi] + *iv,
                        Err(fixed) => fixed,
                    })
                    .collect();
                w = w * d.eval_with_part_ranges(&ranges).clamp_non_neg();
            }
            let value_range = if result_boxed {
                chunks[0] + res_iv
            } else {
                const_value_range
            };
            let lo_mass = if const_in_lo { vol_lb * w.lo() } else { 0.0 };
            let hi_mass = if const_in_hi { vol_ub * w.hi() } else { 0.0 };
            emit(value_range, lo_mass, hi_mass);
        }

        if !advance(&mut idx, &chunkings) {
            return;
        }
    }
}

/// Advances a mixed-radix index vector; `false` when iteration is done.
#[allow(clippy::needless_range_loop)]
fn advance(idx: &mut [usize], chunkings: &[Vec<Interval>]) -> bool {
    let mut d = 0;
    loop {
        if d == idx.len() {
            return false;
        }
        idx[d] += 1;
        if idx[d] < chunkings[d].len() {
            return true;
        }
        idx[d] = 0;
        d += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gubpi_lang::{infer, parse};
    use gubpi_symbolic::{symbolic_paths, SymExecOptions};
    use gubpi_types::infer_interval_types;

    fn paths(src: &str) -> Vec<SymPath> {
        let p = parse(src).unwrap();
        let simple = infer(&p).unwrap();
        let typing = infer_interval_types(&p, &simple);
        symbolic_paths(&p, &typing, SymExecOptions::default())
    }

    fn query(src: &str, u: Interval, opts: PathBoundOptions) -> (f64, f64) {
        let mut lo = 0.0;
        let mut hi = 0.0;
        for p in paths(src) {
            let (l, h) = bound_path_query(&p, u, opts);
            lo += l;
            hi += h;
        }
        (lo, hi)
    }

    #[test]
    fn uniform_probability_is_exact_with_linear_method() {
        let (lo, hi) = query(
            "sample",
            Interval::new(0.0, 0.5),
            PathBoundOptions::default(),
        );
        assert!((lo - 0.5).abs() < 1e-9, "lo={lo}");
        assert!((hi - 0.5).abs() < 1e-9, "hi={hi}");
    }

    #[test]
    fn branch_probabilities_are_polytope_volumes() {
        // P(α₀ ≤ 0.3 branch) = 0.3 exactly.
        let (lo, hi) = query(
            "if sample <= 0.3 then 1 else 0",
            Interval::new(0.5, 1.5),
            PathBoundOptions::default(),
        );
        assert!((lo - 0.3).abs() < 1e-9);
        assert!((hi - 0.3).abs() < 1e-9);
    }

    #[test]
    fn sum_of_uniforms_crosses_half() {
        // P(α₀ + α₁ ≤ 0.75) = 0.75²/2 = 0.28125, exact by Lasserre.
        let (lo, hi) = query(
            "if sample + sample <= 0.75 then 1 else 0",
            Interval::new(0.5, 1.5),
            PathBoundOptions::default(),
        );
        assert!((lo - 0.28125).abs() < 1e-9, "lo={lo}");
        assert!((hi - 0.28125).abs() < 1e-9, "hi={hi}");
    }

    #[test]
    fn linear_score_bounds_converge() {
        // ⟦score(α₀); α₀⟧([0,1]) = ∫₀¹ x dx = 1/2.
        for (splits, tol) in [(4usize, 0.26), (32, 0.04)] {
            let opts = PathBoundOptions {
                splits,
                ..Default::default()
            };
            let (lo, hi) = query("let x = sample in score(x); x", Interval::UNIT, opts);
            assert!(lo <= 0.5 && 0.5 <= hi, "[{lo}, {hi}]");
            assert!(hi - lo <= tol, "splits={splits}: [{lo}, {hi}]");
        }
    }

    #[test]
    fn nonlinear_paths_fall_back_to_grid() {
        // result α₀·α₁ is non-linear; ⟦P⟧([0, 0.25]) with no scores is
        // P(xy ≤ 0.25) = 0.25(1 + ln 4) ≈ 0.5966.
        let src = "let x = sample in let y = sample in
                   if x * y <= 0.25 then 1 else 0";
        let p = &paths(src)[..];
        assert!(p.iter().any(|q| !linear_applicable(q)));
        let opts = PathBoundOptions {
            splits: 64,
            ..Default::default()
        };
        let mut sink = SingleQuery::new(Interval::new(0.5, 1.5));
        for q in p {
            bound_path(q, opts, &mut sink);
        }
        let truth = 0.25 * (1.0 + 4.0f64.ln());
        assert!(sink.lo <= truth && truth <= sink.hi);
        assert!(sink.hi - sink.lo < 0.1, "[{}, {}]", sink.lo, sink.hi);
    }

    #[test]
    fn observe_reweights_mass() {
        // Z = ∫₀¹ pdf_N(0.5, 1)(x) dx; compare against erf ground truth.
        let src = "observe sample from normal(0.5, 1); 1";
        let opts = PathBoundOptions {
            splits: 64,
            ..Default::default()
        };
        let (lo, hi) = query(src, Interval::REAL, opts);
        use gubpi_dist::ContinuousDist;
        let n = gubpi_dist::Normal::new(0.5, 1.0);
        let truth = n.cdf(1.0) - n.cdf(0.0);
        assert!(lo <= truth && truth <= hi, "truth={truth} ∉ [{lo}, {hi}]");
        assert!(hi - lo < 0.05);
    }

    #[test]
    fn certified_volumes_also_sandwich() {
        let opts = PathBoundOptions {
            splits: 8,
            certified_volumes: true,
            volume_budget: 2_000,
            ..Default::default()
        };
        let (lo, hi) = query(
            "if sample + sample <= 0.75 then 1 else 0",
            Interval::new(0.5, 1.5),
            opts,
        );
        assert!(lo <= 0.28125 && 0.28125 <= hi, "[{lo}, {hi}]");
        assert!(hi - lo < 0.1);
    }

    #[test]
    fn sampleless_paths_work() {
        let (lo, hi) = query(
            "score(0.25); 2",
            Interval::new(1.5, 2.5),
            PathBoundOptions::default(),
        );
        assert!((lo - 0.25).abs() < 1e-12 && (hi - 0.25).abs() < 1e-12);
    }
}
