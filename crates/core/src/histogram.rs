//! Histogram-shaped bounds and interval normalisation.
//!
//! Footnote 2 of the paper: applying the bound machinery to a
//! discretisation of the domain yields histogram-like bounds. This module
//! accumulates per-bin unnormalised bounds in one pass over all regions
//! and then normalises them soundly: with `m_i ∈ [lo_i, hi_i]` the mass
//! of bin `i` and `rest_i = Σ_{j≠i} m_j` (including both tails),
//!
//! ```text
//! posterior_i = m_i / (m_i + rest_i)
//!             ∈ [ lo_i / (lo_i + rest_hi_i) , hi_i / (hi_i + rest_lo_i) ]
//! ```
//!
//! by monotonicity of `x/(x+r)` in `x` (increasing) and `r` (decreasing).

use gubpi_interval::Interval;

use crate::pathbounds::BoundSink;

/// Per-bin lower/upper bounds on the unnormalised denotation, plus the
/// two tails outside the histogram domain.
#[derive(Clone, Debug)]
pub struct HistogramBounds {
    edges: Vec<f64>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Bounds on `⟦P⟧((−∞, edges.first])`.
    pub left_tail: (f64, f64),
    /// Bounds on `⟦P⟧([edges.last, ∞))`.
    pub right_tail: (f64, f64),
}

/// A normalised posterior bin.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct NormalizedBin {
    /// The bin interval.
    pub bin: Interval,
    /// Lower bound on the normalised posterior mass of the bin.
    pub lo: f64,
    /// Upper bound on the normalised posterior mass of the bin.
    pub hi: f64,
}

impl HistogramBounds {
    /// A histogram over `domain` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or the domain is unbounded or degenerate.
    pub fn new(domain: Interval, bins: usize) -> HistogramBounds {
        assert!(bins > 0, "need at least one bin");
        assert!(
            domain.is_finite() && domain.width() > 0.0,
            "histogram domain must be bounded with positive width"
        );
        let mut edges = Vec::with_capacity(bins + 1);
        for i in 0..=bins {
            edges.push(domain.lo() + domain.width() * i as f64 / bins as f64);
        }
        HistogramBounds {
            edges,
            lo: vec![0.0; bins],
            hi: vec![0.0; bins],
            left_tail: (0.0, 0.0),
            right_tail: (0.0, 0.0),
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.lo.len()
    }

    /// The `i`-th bin interval.
    pub fn bin(&self, i: usize) -> Interval {
        Interval::new(self.edges[i], self.edges[i + 1])
    }

    /// Unnormalised bounds of bin `i`.
    pub fn unnormalized(&self, i: usize) -> (f64, f64) {
        (self.lo[i], self.hi[i])
    }

    /// Overwrites bin `i` with externally computed bounds (used by the
    /// per-bin exact histogram).
    pub fn set_bin(&mut self, i: usize, lo: f64, hi: f64) {
        self.lo[i] = lo;
        self.hi[i] = hi;
    }

    /// Accumulates another histogram's bounds into this one (bin by bin,
    /// plus tails). The parallel engine's path-level reduce step:
    /// per-path partial histograms are merged **in path order**, fixing
    /// the float summation order independently of the thread count.
    /// (Region-level parallelism *inside* one path needs no histogram
    /// machinery: buffered region contributions are replayed into the
    /// sink in index order — see `gubpi_core::pathbounds`.)
    ///
    /// # Panics
    ///
    /// Panics when the two histograms have different domains or bin
    /// counts.
    pub fn merge_from(&mut self, other: &HistogramBounds) {
        assert_eq!(
            self.edges, other.edges,
            "merging histograms over different binnings"
        );
        for (a, b) in self.lo.iter_mut().zip(&other.lo) {
            *a += b;
        }
        for (a, b) in self.hi.iter_mut().zip(&other.hi) {
            *a += b;
        }
        self.left_tail.0 += other.left_tail.0;
        self.left_tail.1 += other.left_tail.1;
        self.right_tail.0 += other.right_tail.0;
        self.right_tail.1 += other.right_tail.1;
    }

    /// Bounds on the normalising constant `Z = ⟦P⟧(R)`: the sum of all
    /// bins and tails.
    pub fn z_bounds(&self) -> (f64, f64) {
        let lo = self.lo.iter().sum::<f64>() + self.left_tail.0 + self.right_tail.0;
        let hi = self.hi.iter().sum::<f64>() + self.left_tail.1 + self.right_tail.1;
        (lo, hi)
    }

    /// Sound bounds on the *normalised* posterior mass of every bin.
    ///
    /// Returns an empty vector when the upper bound on `Z` is 0 (the
    /// program is almost surely rejected — no posterior exists).
    pub fn normalized(&self) -> Vec<NormalizedBin> {
        let (_, z_hi) = self.z_bounds();
        if z_hi <= 0.0 {
            return Vec::new();
        }
        let total_lo: f64 = self.lo.iter().sum::<f64>() + self.left_tail.0 + self.right_tail.0;
        let total_hi: f64 = self.hi.iter().sum::<f64>() + self.left_tail.1 + self.right_tail.1;
        (0..self.bins())
            .map(|i| {
                let rest_lo = (total_lo - self.lo[i]).max(0.0);
                let rest_hi = total_hi - self.hi[i];
                let lo = if self.lo[i] <= 0.0 {
                    0.0
                } else {
                    self.lo[i] / (self.lo[i] + rest_hi)
                };
                let hi = if self.hi[i] <= 0.0 {
                    0.0
                } else if rest_lo <= 0.0 {
                    1.0
                } else {
                    (self.hi[i] / (self.hi[i] + rest_lo)).min(1.0)
                };
                NormalizedBin {
                    bin: self.bin(i),
                    lo,
                    hi,
                }
            })
            .collect()
    }

    /// Normalised posterior *density* bounds per bin (mass / bin width),
    /// convenient for plotting against pdf curves.
    pub fn normalized_density(&self) -> Vec<NormalizedBin> {
        self.normalized()
            .into_iter()
            .map(|nb| NormalizedBin {
                bin: nb.bin,
                lo: nb.lo / nb.bin.width(),
                hi: nb.hi / nb.bin.width(),
            })
            .collect()
    }
}

impl BoundSink for HistogramBounds {
    fn add(&mut self, value_range: Interval, lo_mass: f64, hi_mass: f64) {
        let first = self.edges[0];
        let last = *self.edges.last().expect("non-empty edges");
        // Lower mass: attribute only when the range sits inside one piece.
        if lo_mass > 0.0 {
            if value_range.hi() <= first {
                self.left_tail.0 += lo_mass;
            } else if value_range.lo() >= last {
                self.right_tail.0 += lo_mass;
            } else if let Some(i) = self.bin_containing(value_range) {
                self.lo[i] += lo_mass;
            }
            // A range spanning several bins contributes no lower mass to
            // any single bin — sound (superadditivity).
        }
        // Upper mass: attribute to every intersecting piece.
        if hi_mass > 0.0 {
            if value_range.lo() < first {
                self.left_tail.1 += hi_mass;
            }
            if value_range.hi() > last {
                self.right_tail.1 += hi_mass;
            }
            for i in 0..self.bins() {
                if self.bin(i).intersects(&value_range) {
                    self.hi[i] += hi_mass;
                }
            }
        }
    }
}

impl HistogramBounds {
    /// The unique bin fully containing `r`, if any.
    fn bin_containing(&self, r: Interval) -> Option<usize> {
        (0..self.bins()).find(|&i| r.subset_of(&self.bin(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_bins() {
        let h = HistogramBounds::new(Interval::new(0.0, 2.0), 4);
        assert_eq!(h.bins(), 4);
        assert_eq!(h.bin(0), Interval::new(0.0, 0.5));
        assert_eq!(h.bin(3), Interval::new(1.5, 2.0));
    }

    #[test]
    fn lower_mass_needs_a_single_bin() {
        let mut h = HistogramBounds::new(Interval::new(0.0, 1.0), 2);
        // Fully inside bin 0.
        h.add(Interval::new(0.1, 0.4), 0.3, 0.3);
        // Spans both bins: no lower attribution, upper to both.
        h.add(Interval::new(0.4, 0.6), 0.2, 0.2);
        assert_eq!(h.unnormalized(0), (0.3, 0.5));
        assert_eq!(h.unnormalized(1), (0.0, 0.2));
    }

    #[test]
    fn tails_capture_outside_mass() {
        let mut h = HistogramBounds::new(Interval::new(0.0, 1.0), 2);
        h.add(Interval::new(-2.0, -1.0), 0.1, 0.1);
        h.add(Interval::new(2.0, 3.0), 0.0, 0.4);
        assert_eq!(h.left_tail, (0.1, 0.1));
        assert_eq!(h.right_tail, (0.0, 0.4));
        let (zlo, zhi) = h.z_bounds();
        assert!((zlo - 0.1).abs() < 1e-12);
        assert!((zhi - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalization_is_sound_and_tight_for_exact_masses() {
        let mut h = HistogramBounds::new(Interval::new(0.0, 1.0), 2);
        // Exact masses 0.2 and 0.6: posterior 0.25 / 0.75.
        h.add(Interval::new(0.0, 0.4), 0.2, 0.2);
        h.add(Interval::new(0.6, 0.9), 0.6, 0.6);
        let n = h.normalized();
        assert!((n[0].lo - 0.25).abs() < 1e-12 && (n[0].hi - 0.25).abs() < 1e-12);
        assert!((n[1].lo - 0.75).abs() < 1e-12 && (n[1].hi - 0.75).abs() < 1e-12);
    }

    #[test]
    fn normalization_widens_with_uncertainty() {
        let mut h = HistogramBounds::new(Interval::new(0.0, 1.0), 2);
        h.add(Interval::new(0.0, 0.4), 0.1, 0.3);
        h.add(Interval::new(0.6, 0.9), 0.5, 0.7);
        let n = h.normalized();
        // True posterior of bin 0 for any (m₀, m₁) in the rectangles lies
        // within the returned bounds.
        for &m0 in &[0.1, 0.2, 0.3] {
            for &m1 in &[0.5, 0.6, 0.7] {
                let p0 = m0 / (m0 + m1);
                assert!(n[0].lo <= p0 + 1e-12 && p0 <= n[0].hi + 1e-12);
            }
        }
        assert!(n[0].lo < n[0].hi);
    }

    #[test]
    fn empty_posterior_returns_no_bins() {
        let h = HistogramBounds::new(Interval::new(0.0, 1.0), 2);
        assert!(h.normalized().is_empty());
    }

    #[test]
    fn merge_from_adds_bins_and_tails() {
        let mut a = HistogramBounds::new(Interval::new(0.0, 1.0), 2);
        a.add(Interval::new(0.1, 0.4), 0.3, 0.3);
        a.add(Interval::new(-2.0, -1.0), 0.1, 0.1);
        let mut b = HistogramBounds::new(Interval::new(0.0, 1.0), 2);
        b.add(Interval::new(0.6, 0.9), 0.2, 0.5);
        b.add(Interval::new(2.0, 3.0), 0.0, 0.4);
        a.merge_from(&b);
        assert_eq!(a.unnormalized(0), (0.3, 0.3));
        assert_eq!(a.unnormalized(1), (0.2, 0.5));
        assert_eq!(a.left_tail, (0.1, 0.1));
        assert_eq!(a.right_tail, (0.0, 0.4));
    }

    #[test]
    #[should_panic(expected = "different binnings")]
    fn merge_from_rejects_mismatched_domains() {
        let mut a = HistogramBounds::new(Interval::new(0.0, 1.0), 2);
        let b = HistogramBounds::new(Interval::new(0.0, 2.0), 2);
        a.merge_from(&b);
    }

    #[test]
    fn density_scales_by_width() {
        let mut h = HistogramBounds::new(Interval::new(0.0, 2.0), 2);
        h.add(Interval::new(0.1, 0.9), 1.0, 1.0);
        let d = h.normalized_density();
        assert!((d[0].lo - 1.0).abs() < 1e-12); // mass 1 over width 1
    }
}
