//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of the criterion API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing is a plain wall-clock mean over `sample_size` iterations after
//! one warm-up run — adequate for coarse regression tracking, with none
//! of real criterion's statistics. See `vendor/README.md` for the
//! replacement policy.

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into(), self.sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints a one-line summary.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters: 1,
        elapsed_ns: 0.0,
    };
    // Warm-up pass.
    f(&mut bencher);
    bencher.iters = sample_size as u64;
    bencher.elapsed_ns = 0.0;
    f(&mut bencher);
    let per_iter = bencher.elapsed_ns / bencher.iters as f64;
    println!(
        "{id:<50} {:>12.1} ns/iter ({} iters)",
        per_iter, bencher.iters
    );
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Runs `routine` `iters` times and records the total elapsed time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos() as f64;
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        // warm-up (1) + timed (3)
        assert_eq!(calls, 4);
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs_targets() {
        benches();
    }
}
