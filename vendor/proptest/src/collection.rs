//! Collection strategies (only `vec` is needed by this workspace).

use crate::{Strategy, TestRng};

/// A length specification: either a fixed size or a half-open/inclusive
/// range of sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi - self.size.lo + 1;
        let len = self.size.lo + (rng.next_u64() % span as u64) as usize;
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}
