//! Collection strategies (only `vec` is needed by this workspace).

use crate::{Strategy, TestRng};

/// A length specification: either a fixed size or a half-open/inclusive
/// range of sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi - self.size.lo + 1;
        let len = self.size.lo + (rng.next_u64() % span as u64) as usize;
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }

    /// Shrinks structurally (toward the minimum length: halve the tail,
    /// drop the last element, drop the first element) and element-wise
    /// (first shrink candidate per position).
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let min = self.size.lo;
        let len = value.len();
        if len > min {
            let half = min + (len - min) / 2;
            if half < len - 1 {
                out.push(value[..half].to_vec());
            }
            out.push(value[..len - 1].to_vec());
            let mut no_first = value.clone();
            no_first.remove(0);
            out.push(no_first);
        }
        for i in 0..len {
            if let Some(cand) = self.element.shrink(&value[i]).into_iter().next() {
                let mut next = value.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}
