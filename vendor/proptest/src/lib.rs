//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the proptest API used by GuBPI's test suites:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`],
//!   [`Strategy::prop_recursive`] and [`Strategy::boxed`];
//! * strategies for numeric ranges, tuples, [`Just`], simple regex
//!   string patterns, and [`collection::vec`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assert_ne!`] macros;
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: generation is deterministic per test
//! (the RNG is seeded from the test name, so runs are reproducible), and
//! there is **no shrinking** — a failing case reports its inputs via the
//! assertion message instead. See `vendor/README.md` for the replacement
//! policy.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod collection;

/// Deterministic generator used to drive strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator seeded from an arbitrary string (e.g. the test name).
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the name, folded into a non-zero seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h | 1)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform on `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// Test-runner configuration (only the case count is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 100 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }

    /// Builds recursive structures: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into composite cases, nested at most
    /// `depth` levels. `_desired_size` and `_expected_branch` are accepted
    /// for API compatibility but not used by this stand-in.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut cur = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(cur.clone()).boxed();
            // Each level flips between "stay shallow" and "recurse once
            // more", which keeps expected sizes small while still
            // exercising every depth up to the limit.
            cur = Union::new(vec![cur, deeper]).boxed();
        }
        cur
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.inner.gen_value(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (what
/// [`prop_oneof!`] expands to).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A uniform union of the given non-empty alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].gen_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + (rng.next_f64() as $t) * (end - start)
            }
        }
    )*};
}

float_range_strategy!(f64, f32);

macro_rules! tuple_strategy {
    ($(($($n:ident $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// String strategy from a *simple* regex pattern.
///
/// Supported shapes: a sequence of atoms, where an atom is a literal
/// character or a character class `[a-z0-9_]`, optionally followed by a
/// repetition `{m,n}`, `{m}`, `*`, `+` or `?`. This covers patterns like
/// `"[ -~]{0,80}"`; anything fancier panics with a clear message.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        gen_from_pattern(self, rng)
    }
}

#[derive(Debug)]
enum Atom {
    Lit(char),
    Class(Vec<(char, char)>),
}

fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut out = String::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let a = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
                    if a == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let b = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated range in pattern {pattern:?}"));
                        ranges.push((a, b));
                    } else {
                        ranges.push((a, a));
                    }
                }
                Atom::Class(ranges)
            }
            '\\' => Atom::Lit(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
            ),
            '.' | '(' | ')' | '|' => {
                panic!("pattern {pattern:?} uses regex features beyond the offline proptest stub")
            }
            lit => Atom::Lit(lit),
        };
        let (lo, hi) = match chars.peek() {
            Some('{') => {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                let mut parts = spec.splitn(2, ',');
                let m: usize = parts.next().unwrap().trim().parse().unwrap();
                let n: usize = match parts.next() {
                    Some(s) => s.trim().parse().unwrap(),
                    None => m,
                };
                (m, n)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        let count = lo + rng.below(hi - lo + 1);
        for _ in 0..count {
            match &atom {
                Atom::Lit(l) => out.push(*l),
                Atom::Class(ranges) => {
                    let (a, b) = ranges[rng.below(ranges.len())];
                    let span = b as u32 - a as u32 + 1;
                    let ch = char::from_u32(a as u32 + (rng.next_u64() as u32 % span)).unwrap_or(a);
                    out.push(ch);
                }
            }
        }
    }
    out
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` that generates `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..cfg.cases {
                    $(let $p = $crate::Strategy::gen_value(&($s), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a property holds (no shrinking: failure panics immediately).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// The glob-imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    /// Re-export so `prop_oneof!`-style macros resolve helper paths.
    pub use crate as proptest;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_name("t");
        let s = (0usize..5, -1.0f64..1.0, 0.0f64..=1.0);
        for _ in 0..200 {
            let (i, x, y) = s.gen_value(&mut rng);
            assert!(i < 5);
            assert!((-1.0..1.0).contains(&x));
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn map_union_and_just() {
        let mut rng = TestRng::from_name("u");
        let s = prop_oneof![(0u32..10).prop_map(|n| n.to_string()), Just("x".to_owned()),];
        let mut saw_just = false;
        let mut saw_digit = false;
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            if v == "x" {
                saw_just = true;
            } else {
                assert!(v.parse::<u32>().unwrap() < 10);
                saw_digit = true;
            }
        }
        assert!(saw_just && saw_digit);
    }

    #[test]
    fn recursive_strategies_terminate() {
        let leaf = (0u32..10).prop_map(|n| n.to_string());
        let s = leaf.prop_recursive(4, 32, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a}+{b})"))
        });
        let mut rng = TestRng::from_name("rec");
        let mut nested = false;
        for _ in 0..200 {
            let v = s.gen_value(&mut rng);
            assert!(v.len() < 1000);
            if v.contains('(') {
                nested = true;
            }
        }
        assert!(nested);
    }

    #[test]
    fn pattern_strategy_matches_class() {
        let mut rng = TestRng::from_name("pat");
        for _ in 0..100 {
            let s = "[ -~]{0,80}".gen_value(&mut rng);
            assert!(s.len() <= 80);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::from_name("vec");
        for _ in 0..100 {
            let v = collection::vec(0.0f64..1.0, 1..4).gen_value(&mut rng);
            assert!((1..4).contains(&v.len()));
            let w = collection::vec(0u32..3, 3).gen_value(&mut rng);
            assert_eq!(w.len(), 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The macro itself: patterns, multiple params, trailing comma.
        #[test]
        fn macro_roundtrip((a, b) in (0u32..10, 0u32..10), c in 0usize..3,) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(c.min(2), c.min(2));
            prop_assert_ne!(c + 1, 0);
        }
    }
}
