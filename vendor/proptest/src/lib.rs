//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the proptest API used by GuBPI's test suites:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`],
//!   [`Strategy::prop_recursive`] and [`Strategy::boxed`];
//! * strategies for numeric ranges, tuples, [`Just`], simple regex
//!   string patterns, and [`collection::vec`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assert_ne!`] macros;
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: generation is deterministic per test
//! (the RNG is seeded from the test name, so runs are reproducible), and
//! shrinking is **basic**: on failure the runner greedily applies
//! [`Strategy::shrink`] candidates (numeric ranges shrink toward their
//! lower endpoint, tuples shrink componentwise, `collection::vec`
//! shrinks both length and elements) and reports the smallest input that
//! still fails. `prop_map`, `prop_oneof!` and string-pattern strategies
//! pass through unshrunk — a mapped/unioned value cannot be soundly
//! projected back through its generator in this stand-in. See
//! `vendor/README.md` for the replacement policy.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod collection;

/// Deterministic generator used to drive strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator seeded from an arbitrary string (e.g. the test name).
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the name, folded into a non-zero seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h | 1)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform on `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// Test-runner configuration (only the case count is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 100 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly "smaller" candidates derived from a failing
    /// `value` (basic shrinking). The runner greedily accepts the first
    /// candidate that still fails and recurses; strategies that cannot
    /// shrink soundly (maps, unions, patterns) return no candidates.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }

    /// Builds recursive structures: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into composite cases, nested at most
    /// `depth` levels. `_desired_size` and `_expected_branch` are accepted
    /// for API compatibility but not used by this stand-in.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut cur = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(cur.clone()).boxed();
            // Each level flips between "stay shallow" and "recurse once
            // more", which keeps expected sizes small while still
            // exercising every depth up to the limit.
            cur = Union::new(vec![cur, deeper]).boxed();
        }
        cur
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.inner.gen_value(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        self.inner.shrink(value)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (what
/// [`prop_oneof!`] expands to).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A uniform union of the given non-empty alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].gen_value(rng)
    }
}

/// Shared integral shrink order: the lower endpoint first (the simplest
/// value), then the midpoint (binary search), then one step down.
fn shrink_int<T>(lo: i128, v: i128, back: impl Fn(i128) -> T) -> Vec<T> {
    let mut out = Vec::new();
    if v == lo {
        return out;
    }
    out.push(back(lo));
    let mid = lo + (v - lo) / 2;
    if mid != lo && mid != v {
        out.push(back(mid));
    }
    let dec = v - 1;
    if dec != lo && dec != mid {
        out.push(back(dec));
    }
    out
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(self.start as i128, *value as i128, |x| x as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(*self.start() as i128, *value as i128, |x| x as $t)
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Shared float shrink order: the lower endpoint, zero (when interior),
/// then the midpoint toward the lower endpoint.
fn shrink_float<T: PartialOrd + Copy>(lo: f64, v: f64, back: impl Fn(f64) -> T) -> Vec<T> {
    let mut out = Vec::new();
    if v.is_nan() || v <= lo {
        return out; // at the minimum already (or NaN)
    }
    out.push(back(lo));
    if lo < 0.0 && v > 0.0 {
        out.push(back(0.0));
    }
    let mid = lo + (v - lo) / 2.0;
    if mid != lo && mid != v {
        out.push(back(mid));
    }
    out
}

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_float(self.start as f64, *value as f64, |x| x as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + (rng.next_f64() as $t) * (end - start)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_float(*self.start() as f64, *value as f64, |x| x as $t)
            }
        }
    )*};
}

float_range_strategy!(f64, f32);

macro_rules! tuple_strategy {
    ($(($($n:ident $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+)
        where
            $($n::Value: Clone,)+
        {
            type Value = ($($n::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// String strategy from a *simple* regex pattern.
///
/// Supported shapes: a sequence of atoms, where an atom is a literal
/// character or a character class `[a-z0-9_]`, optionally followed by a
/// repetition `{m,n}`, `{m}`, `*`, `+` or `?`. This covers patterns like
/// `"[ -~]{0,80}"`; anything fancier panics with a clear message.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        gen_from_pattern(self, rng)
    }
}

#[derive(Debug)]
enum Atom {
    Lit(char),
    Class(Vec<(char, char)>),
}

fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut out = String::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let a = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
                    if a == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let b = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated range in pattern {pattern:?}"));
                        ranges.push((a, b));
                    } else {
                        ranges.push((a, a));
                    }
                }
                Atom::Class(ranges)
            }
            '\\' => Atom::Lit(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
            ),
            '.' | '(' | ')' | '|' => {
                panic!("pattern {pattern:?} uses regex features beyond the offline proptest stub")
            }
            lit => Atom::Lit(lit),
        };
        let (lo, hi) = match chars.peek() {
            Some('{') => {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                let mut parts = spec.splitn(2, ',');
                let m: usize = parts.next().unwrap().trim().parse().unwrap();
                let n: usize = match parts.next() {
                    Some(s) => s.trim().parse().unwrap(),
                    None => m,
                };
                (m, n)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        let count = lo + rng.below(hi - lo + 1);
        for _ in 0..count {
            match &atom {
                Atom::Lit(l) => out.push(*l),
                Atom::Class(ranges) => {
                    let (a, b) = ranges[rng.below(ranges.len())];
                    let span = b as u32 - a as u32 + 1;
                    let ch = char::from_u32(a as u32 + (rng.next_u64() as u32 % span)).unwrap_or(a);
                    out.push(ch);
                }
            }
        }
    }
    out
}

/// Drives one generated case: runs `f`, and on failure greedily shrinks
/// the input via [`Strategy::shrink`] before reporting the smallest
/// still-failing input. Called by the [`proptest!`] macro.
#[doc(hidden)]
pub fn run_case<S, F>(strat: &S, input: S::Value, f: F)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: Fn(S::Value),
{
    let Some(first_msg) = run_catching(&f, input.clone()) else {
        return;
    };
    // Shrink attempts reuse the panic machinery; silence the hook for
    // candidate runs so they do not spam stderr. The panic hook is
    // process-global and libtest runs tests concurrently, so (a) the
    // swap is serialised — without the guard, two concurrently-shrinking
    // properties could each take the other's silencer as "previous" and
    // leave it installed permanently — and (b) the silencer only mutes
    // *this* thread, delegating to the previous hook for every other
    // thread so unrelated failing tests keep their diagnostics.
    static HOOK_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let guard = HOOK_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let prev_hook: std::sync::Arc<dyn Fn(&std::panic::PanicHookInfo<'_>) + Send + Sync> =
        std::sync::Arc::from(std::panic::take_hook());
    let shrinking_thread = std::thread::current().id();
    {
        let prev_hook = std::sync::Arc::clone(&prev_hook);
        std::panic::set_hook(Box::new(move |info| {
            if std::thread::current().id() != shrinking_thread {
                prev_hook(info);
            }
        }));
    }
    let mut cur = input;
    let mut msg = first_msg;
    let mut shrinks = 0usize;
    'outer: while shrinks < 1_000 {
        for cand in strat.shrink(&cur) {
            if let Some(m) = run_catching(&f, cand.clone()) {
                cur = cand;
                msg = m;
                shrinks += 1;
                continue 'outer;
            }
        }
        break;
    }
    // Restore the previous behaviour for all threads (re-wrapped in a
    // closure; the original box was shared with the silencer above).
    std::panic::set_hook(Box::new(move |info| prev_hook(info)));
    drop(guard);
    panic!(
        "property failed after {shrinks} shrink step(s)\n  minimal input: {cur:?}\n  cause: {msg}"
    );
}

fn run_catching<V>(f: &impl Fn(V), v: V) -> Option<String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(v))) {
        Ok(()) => None,
        Err(payload) => Some(
            payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "non-string panic payload".to_owned()),
        ),
    }
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` that generates `cases` inputs and runs the body,
/// shrinking failing inputs before reporting.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                let __strategy = ($($s,)+);
                for __case in 0..cfg.cases {
                    let __input = $crate::Strategy::gen_value(&__strategy, &mut rng);
                    $crate::run_case(&__strategy, __input, |($($p,)+)| $body);
                }
            }
        )*
    };
}

/// Asserts a property holds (no shrinking: failure panics immediately).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// The glob-imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    /// Re-export so `prop_oneof!`-style macros resolve helper paths.
    pub use crate as proptest;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_name("t");
        let s = (0usize..5, -1.0f64..1.0, 0.0f64..=1.0);
        for _ in 0..200 {
            let (i, x, y) = s.gen_value(&mut rng);
            assert!(i < 5);
            assert!((-1.0..1.0).contains(&x));
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn map_union_and_just() {
        let mut rng = TestRng::from_name("u");
        let s = prop_oneof![(0u32..10).prop_map(|n| n.to_string()), Just("x".to_owned()),];
        let mut saw_just = false;
        let mut saw_digit = false;
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            if v == "x" {
                saw_just = true;
            } else {
                assert!(v.parse::<u32>().unwrap() < 10);
                saw_digit = true;
            }
        }
        assert!(saw_just && saw_digit);
    }

    #[test]
    fn recursive_strategies_terminate() {
        let leaf = (0u32..10).prop_map(|n| n.to_string());
        let s = leaf.prop_recursive(4, 32, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a}+{b})"))
        });
        let mut rng = TestRng::from_name("rec");
        let mut nested = false;
        for _ in 0..200 {
            let v = s.gen_value(&mut rng);
            assert!(v.len() < 1000);
            if v.contains('(') {
                nested = true;
            }
        }
        assert!(nested);
    }

    #[test]
    fn pattern_strategy_matches_class() {
        let mut rng = TestRng::from_name("pat");
        for _ in 0..100 {
            let s = "[ -~]{0,80}".gen_value(&mut rng);
            assert!(s.len() <= 80);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::from_name("vec");
        for _ in 0..100 {
            let v = collection::vec(0.0f64..1.0, 1..4).gen_value(&mut rng);
            assert!((1..4).contains(&v.len()));
            let w = collection::vec(0u32..3, 3).gen_value(&mut rng);
            assert_eq!(w.len(), 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The macro itself: patterns, multiple params, trailing comma.
        #[test]
        fn macro_roundtrip((a, b) in (0u32..10, 0u32..10), c in 0usize..3,) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(c.min(2), c.min(2));
            prop_assert_ne!(c + 1, 0);
        }
    }

    fn failure_message(go: impl Fn() + std::panic::UnwindSafe) -> String {
        let payload = std::panic::catch_unwind(go).expect_err("property must fail");
        payload
            .downcast_ref::<String>()
            .cloned()
            .expect("formatted panic payload")
    }

    #[test]
    fn shrinking_minimises_integer_range_failures() {
        // `v < 50` fails from 999; greedy binary shrinking must land on
        // the boundary value exactly.
        let strat = (0u32..1000,);
        let msg = failure_message(|| {
            run_case(&strat, (999,), |(v,)| assert!(v < 50, "too big: {v}"));
        });
        assert!(msg.contains("minimal input: (50,)"), "{msg}");
    }

    #[test]
    fn shrinking_minimises_vec_length() {
        // "No vec of length ≥ 3" must shrink to exactly length 3.
        let strat = (collection::vec(0u32..100, 0..10),);
        let failing: Vec<u32> = vec![7, 3, 9, 4, 2, 8, 6];
        let msg = failure_message(|| {
            run_case(&strat, (failing.clone(),), |(v,)| {
                assert!(v.len() < 3, "len {}", v.len());
            });
        });
        // All elements also shrink to the range minimum.
        assert!(msg.contains("minimal input: ([0, 0, 0],)"), "{msg}");
    }

    #[test]
    fn shrinking_is_componentwise_on_tuples() {
        let strat = (0u32..100, 0u32..100);
        let msg = failure_message(|| {
            run_case(&strat, (90, 7), |(a, _b)| assert!(a < 20, "a = {a}"));
        });
        // The failing component reaches its boundary; the passing one
        // shrinks all the way to the range minimum.
        assert!(msg.contains("minimal input: (20, 0)"), "{msg}");
    }

    #[test]
    fn float_ranges_shrink_toward_the_lower_endpoint() {
        let s = -1.0f64..1.0;
        let cands = s.shrink(&0.5);
        assert!(cands.contains(&-1.0));
        assert!(cands.contains(&0.0));
        assert!(s.shrink(&-1.0).is_empty());
    }

    #[test]
    fn passing_properties_never_shrink() {
        let strat = (0u32..10,);
        run_case(&strat, (5,), |(v,)| assert!(v < 10));
    }
}
