//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of the `rand` 0.9 API that GuBPI actually uses:
//!
//! * [`Rng`] — the core source-of-randomness trait (`next_u64`);
//! * [`RngExt`] — extension methods [`RngExt::random`] and
//!   [`RngExt::random_range`], blanket-implemented for every [`Rng`];
//! * [`SeedableRng`] with [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator.
//!
//! The generator is *not* cryptographically secure; it exists to drive
//! Monte-Carlo estimates and tests reproducibly. See `vendor/README.md`
//! for the policy on replacing these stubs with the real crates.

pub mod rngs;

pub use rngs::StdRng;

/// A source of uniformly distributed random 64-bit words.
///
/// This plays the role of both `rand::RngCore` and `rand::Rng`; all
/// higher-level drawing goes through [`RngExt`].
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an [`Rng`] (the stand-in for
/// `rand`'s `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as Standard>::from_rng(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let u = <$t as Standard>::from_rng(rng);
                start + u * (end - start)
            }
        }
    )*};
}

float_sample_range!(f64, f32);

/// Convenience drawing methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly distributed value of type `T` (floats land in `[0, 1)`).
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: Rng> RngExt for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_and_unit_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: f64 = a.random();
            let y: f64 = b.random();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.random_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.random_range(0usize..=4);
            assert!(j <= 4);
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng>(mut rng: R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        let y = draw(&mut rng);
        assert_ne!(x, y);
    }
}
