//! Quickstart: parse a model, compute guaranteed posterior bounds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gubpi_core::{AnalysisOptions, Analyzer};
use gubpi_interval::Interval;

fn main() {
    // A tiny Bayesian model: uniform prior on a bias, one noisy
    // observation, return the bias.
    let source = "
        let bias = sample in
        observe 0.8 from normal(bias, 0.25);
        bias";

    let analyzer =
        Analyzer::from_source(source, AnalysisOptions::default()).expect("model compiles");

    // Guaranteed bounds on the normalising constant Z = ⟦P⟧(R).
    let (z_lo, z_hi) = analyzer.normalizing_constant();
    println!("Z in [{z_lo:.6}, {z_hi:.6}]");

    // Guaranteed bounds on the posterior probability that the bias
    // exceeds one half. These are *not* stochastic estimates: an exact
    // posterior value outside these brackets is impossible.
    let (lo, hi) = analyzer.posterior_probability(Interval::new(0.5, 1.0));
    println!("P(bias >= 0.5 | data) in [{lo:.6}, {hi:.6}]");

    // Histogram-shaped bounds over the prior support.
    let hist = analyzer.histogram(Interval::new(0.0, 1.0), 10);
    println!("\nPosterior histogram bounds:");
    print!("{}", gubpi_core::render_histogram(&hist, 40));
}
