//! Using guaranteed bounds to unit-test an inference algorithm (§1.3:
//! "most useful for unit-testing of implementations of Bayesian
//! inference algorithms").
//!
//! We run two samplers over a model zoo — a correct importance sampler
//! and a subtly broken variant that applies every likelihood twice — and
//! check each against the analyzer's guaranteed brackets.
//!
//! ```sh
//! cargo run --release --example unit_test_your_sampler
//! ```

use gubpi_core::{AnalysisOptions, Analyzer};
use gubpi_inference::importance::{importance_sample, ImportanceOptions};
use gubpi_interval::Interval;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MODELS: &[(&str, &str)] = &[
    ("tilted", "let x = sample in score(x); x"),
    (
        "observed",
        "let x = sample in observe 0.7 from normal(x, 0.2); x",
    ),
    (
        "branching",
        "if sample <= 0.3 then sample uniform(0, 0.5) else sample uniform(0.5, 1)",
    ),
];

fn main() {
    let u = Interval::new(0.5, 1.0);
    println!(
        "{:<10} {:>21} {:>10} {:>10}",
        "model", "guaranteed P(x>0.5)", "sampler", "broken"
    );
    let mut caught = 0;
    for (name, src) in MODELS {
        let a = Analyzer::from_source(src, AnalysisOptions::default()).expect("model compiles");
        let (lo, hi) = a.posterior_probability(u);

        let program = gubpi_lang::parse(src).expect("model parses");
        let mut rng = StdRng::seed_from_u64(2024);
        let good = importance_sample(&program, 30_000, ImportanceOptions::default(), &mut rng);
        let p_good = good.probability_in(u.lo(), u.hi());

        // The broken sampler: squares every weight (a classic bug shape —
        // applying the likelihood twice).
        let mut bad = good.clone();
        for lw in &mut bad.log_weights {
            *lw *= 2.0;
        }
        let p_bad = bad.probability_in(u.lo(), u.hi());

        let bad_flagged = p_bad < lo - 0.02 || p_bad > hi + 0.02;
        if bad_flagged {
            caught += 1;
        }
        println!(
            "{name:<10} [{lo:.4}, {hi:.4}] {p_good:>10.4} {p_bad:>9.4}{}",
            if bad_flagged { " <- caught" } else { "" }
        );
    }
    println!(
        "\nguaranteed bounds flagged the double-weighting bug on {caught}/{} models",
        MODELS.len()
    );
}
