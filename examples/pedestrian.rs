//! The pedestrian model (Example 1.1 / Fig. 1 / Fig. 7 of the paper).
//!
//! A pedestrian lost at a uniform distance from home walks uniform
//! random distances in either direction until reaching home; the total
//! walked distance is observed to be 1.1 km (sigma = 0.1). The posterior
//! of the starting point is nonparametric — the number of random
//! variables is unbounded — which defeats fixed-dimension samplers.
//!
//! This example computes guaranteed bounds with the analyzer, draws
//! importance-sampling and (deliberately wrong) fixed-truncation HMC
//! histograms, and shows that the bounds admit IS but refute HMC.
//! For the full-resolution reproduction run `repro pedestrian`.
//!
//! ```sh
//! cargo run --release --example pedestrian
//! ```

use gubpi_core::{render_histogram, AnalysisOptions, Analyzer};
use gubpi_inference::hmc::{hmc_sample, HmcOptions};
use gubpi_inference::importance::{importance_sample, ImportanceOptions};
use gubpi_interval::Interval;
use gubpi_symbolic::SymExecOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

const PEDESTRIAN: &str = "
    let start = 3 * sample uniform(0, 1) in
    let rec walk x =
      if x <= 0 then 0 else
        let step = sample uniform(0, 1) in
        if sample <= 0.5 then step + walk (x + step)
        else step + walk (x - step)
    in
    let distance = walk start in
    observe distance from normal(1.1, 0.1);
    start";

fn main() {
    let domain = Interval::new(0.0, 3.0);
    let bins = 12;

    // Guaranteed bounds (depth-limited symbolic execution + approxFix).
    let mut opts = AnalysisOptions {
        sym: SymExecOptions {
            max_fix_unfoldings: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    opts.bounds.splits = 16;
    let analyzer = Analyzer::from_source(PEDESTRIAN, opts).expect("pedestrian compiles");
    println!(
        "symbolic paths: {} ({} handled by the linear semantics)",
        analyzer.paths().len(),
        analyzer.linear_path_count()
    );
    let hist = analyzer.histogram(domain, bins);
    println!("\nGuaranteed posterior bounds:");
    print!("{}", render_histogram(&hist, 40));

    // Likelihood-weighted importance sampling — the trustworthy sampler.
    let program = gubpi_lang::parse(PEDESTRIAN).expect("pedestrian parses");
    let mut rng = StdRng::seed_from_u64(4);
    let is = importance_sample(&program, 20_000, ImportanceOptions::default(), &mut rng);
    let is_hist = is.histogram(domain.lo(), domain.hi(), bins);

    // Fixed-truncation HMC — repeats Pyro's Fig. 1 modelling error.
    let mut rng = StdRng::seed_from_u64(5);
    let hmc = hmc_sample(
        &program,
        800,
        HmcOptions {
            dim: 9,
            step_size: 0.12,
            leapfrog_steps: 8,
            burn_in: 100,
            ..Default::default()
        },
        &mut rng,
    );
    let mut hmc_hist = vec![0.0f64; bins];
    for v in &hmc.values {
        if *v >= domain.lo() && *v < domain.hi() {
            let b = (((v - domain.lo()) / domain.width()) * bins as f64) as usize;
            hmc_hist[b.min(bins - 1)] += 1.0;
        }
    }
    let total: f64 = hmc_hist.iter().sum::<f64>().max(1.0);
    for x in &mut hmc_hist {
        *x /= total;
    }

    println!("\nper-bin masses: guaranteed bounds vs samplers");
    let mut hmc_violations = 0;
    for (i, nb) in hist.normalized().iter().enumerate() {
        let ok_hmc = hmc_hist[i] >= nb.lo - 0.002 && hmc_hist[i] <= nb.hi + 0.002;
        if !ok_hmc {
            hmc_violations += 1;
        }
        println!(
            "[{:4.2}, {:4.2})  bounds [{:.4}, {:.4}]  IS {:.4}  HMC {:.4} {}",
            nb.bin.lo(),
            nb.bin.hi(),
            nb.lo,
            nb.hi,
            is_hist[i],
            hmc_hist[i],
            if ok_hmc { "" } else { "<- violates!" }
        );
    }
    println!(
        "\nThe fixed-truncation HMC histogram violates the guaranteed bounds \
         in {hmc_violations} bin(s) — the Fig. 1 phenomenon."
    );
}
