//! Binary Gaussian mixture (Fig. 5c): guaranteed bounds find both modes.
//!
//! MCMC samplers frequently get stuck in one mode of a mixture; the
//! guaranteed bounds cannot — any histogram missing a mode violates the
//! lower bounds.
//!
//! ```sh
//! cargo run --release --example mixture_model
//! ```

use gubpi_core::{render_histogram, AnalysisOptions, Analyzer};
use gubpi_inference::mh::{mh_sample, MhOptions};
use gubpi_interval::Interval;
use rand::rngs::StdRng;
use rand::SeedableRng;

const GMM: &str = "
    let x = if sample <= 0.5 then sample normal(0 - 2, 0.7)
            else sample normal(2, 0.7) in
    observe 0.3 from normal(x, 2.5);
    x";

fn main() {
    let domain = Interval::new(-5.0, 5.0);
    let bins = 20;

    let mut opts = AnalysisOptions::default();
    opts.bounds.splits = 48;
    let analyzer = Analyzer::from_source(GMM, opts).expect("model compiles");
    let hist = analyzer.histogram(domain, bins);
    println!("Guaranteed bounds for the binary GMM posterior:");
    print!("{}", render_histogram(&hist, 40));

    // Both modes must carry guaranteed mass.
    let norm = hist.normalized();
    let left_mode: f64 = norm
        .iter()
        .filter(|nb| nb.bin.hi() <= 0.0)
        .map(|nb| nb.lo)
        .sum();
    let right_mode: f64 = norm
        .iter()
        .filter(|nb| nb.bin.lo() >= 0.0)
        .map(|nb| nb.lo)
        .sum();
    println!("guaranteed mass left of 0:  >= {left_mode:.4}");
    println!("guaranteed mass right of 0: >= {right_mode:.4}");

    // A short MH chain often explores one mode only; compare.
    let program = gubpi_lang::parse(GMM).expect("model parses");
    let mut rng = StdRng::seed_from_u64(31);
    let chain = mh_sample(&program, 2_000, MhOptions::default(), &mut rng);
    let left =
        chain.values.iter().filter(|&&v| v < 0.0).count() as f64 / chain.values.len().max(1) as f64;
    println!(
        "\nMH chain: {:.1}% of samples left of 0 (acceptance {:.2})",
        100.0 * left,
        chain.acceptance_rate
    );
    if left < left_mode || (1.0 - left) < right_mode {
        println!("-> the chain under-covers a mode that the bounds prove must exist!");
    } else {
        println!("-> this chain is consistent with the guaranteed bounds.");
    }
}
