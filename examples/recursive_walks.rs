//! Recursive models beyond the reach of exact solvers (Fig. 6d–6f).
//!
//! Exact engines like PSI must unroll loops to a fixed depth, silently
//! changing the posterior; the interval-type-backed `approxFix` lets the
//! analyzer bound the *unbounded* program instead. This example shows the
//! depth ablation: bounds tighten as the unfolding budget grows while
//! always containing the Monte-Carlo estimate.
//!
//! ```sh
//! cargo run --release --example recursive_walks
//! ```

use gubpi_core::{AnalysisOptions, Analyzer};
use gubpi_inference::importance::{importance_sample, ImportanceOptions};
use gubpi_interval::Interval;
use gubpi_symbolic::SymExecOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fig. 6f: posterior over the step-direction parameter of a random walk
/// observed to halt near 1.
const PARAM_ESTIMATION: &str = "
    let p = sample in
    let rec walk loc n =
      if n <= 0 then loc else
      if sample <= p then walk (loc - 1) (n - 1)
      else walk (loc + 1) (n - 1)
    in
    let final = walk 0 4 in
    observe final from normal(1, 0.5);
    p";

fn main() {
    let u = Interval::new(0.0, 0.5); // P(p <= 1/2 | halt near 1)

    println!("Fig. 6f param-estimation: P(p <= 0.5 | data)");
    println!("{:>6} {:>22} {:>8}", "depth", "guaranteed bounds", "paths");
    for depth in [2u32, 4, 6, 8] {
        let opts = AnalysisOptions {
            sym: SymExecOptions {
                max_fix_unfoldings: depth,
                ..Default::default()
            },
            ..Default::default()
        };
        let a = Analyzer::from_source(PARAM_ESTIMATION, opts).expect("model compiles");
        let (lo, hi) = a.posterior_probability(u);
        println!("{depth:>6} [{lo:.4}, {hi:.4}]{:>13}", a.paths().len());
    }

    // Monte-Carlo cross-check: the IS estimate must land in the bounds.
    let program = gubpi_lang::parse(PARAM_ESTIMATION).expect("model parses");
    let mut rng = StdRng::seed_from_u64(8);
    let ws = importance_sample(&program, 50_000, ImportanceOptions::default(), &mut rng);
    println!(
        "\nimportance sampling estimate: {:.4} (50k samples)",
        ws.probability_in(u.lo(), u.hi())
    );
    println!("walks drift left when p is large, so halting at +1 favours small p.");
}
